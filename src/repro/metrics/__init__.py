"""repro.metrics — hierarchical stat registry with windowed snapshots.

Public surface:

- :class:`MetricRegistry` / :class:`MetricSnapshot` — counter, gauge,
  and formula store with O(1) increments and cheap snapshot/delta.
- :class:`StatsView` — attribute-style facade that keeps the legacy
  ``CoreStats``-shaped reads working on top of registry cells.
- :mod:`repro.metrics.formulas` — every derived metric (IPC, MPKI,
  average load latency, UOC fetch fraction) defined exactly once.
- :class:`WindowRecorder` / :class:`WindowSample` — per-N-instruction
  interval snapshots for warmup-excludable time series.
- :func:`diff_metric_documents` / :func:`render_metric_diff` — A/B
  comparison of two saved ``metrics --json`` documents.
- :mod:`repro.metrics.regress` — the population-archive regression
  sentinel (:func:`compare_populations`, permutation-test significance
  filter) behind ``python -m repro regress``.
"""

from .diff import diff_metric_documents, render_metric_diff
from .formulas import STANDARD_FORMULAS
from .regress import (REGRESS_SCHEMA_VERSION, REGRESSION_METRICS,
                      compare_populations, permutation_pvalue,
                      population_rows, regress_exit_code,
                      render_population_diff, render_regress,
                      window_delta_pvalue)
from .registry import (Counter, Formula, Gauge, MetricRegistry,
                       MetricSnapshot, StatsView)
from .windows import (DEFAULT_WINDOW_INSTRUCTIONS, STALL_WINDOW_COUNTERS,
                      WINDOW_COUNTERS, WindowRecorder, WindowSample,
                      window_metric_series)

__all__ = [
    "Counter",
    "Gauge",
    "Formula",
    "MetricRegistry",
    "MetricSnapshot",
    "StatsView",
    "STANDARD_FORMULAS",
    "DEFAULT_WINDOW_INSTRUCTIONS",
    "STALL_WINDOW_COUNTERS",
    "WINDOW_COUNTERS",
    "WindowRecorder",
    "WindowSample",
    "window_metric_series",
    "diff_metric_documents",
    "render_metric_diff",
    "REGRESS_SCHEMA_VERSION",
    "REGRESSION_METRICS",
    "compare_populations",
    "permutation_pvalue",
    "population_rows",
    "regress_exit_code",
    "render_population_diff",
    "render_regress",
    "window_delta_pvalue",
]
