"""Windowed metric collection.

A *window* is a per-N-instruction interval of a simulation.  The
recorder snapshots a small set of counters at each boundary and stores
the **delta** against the previous boundary, so each
:class:`WindowSample` describes only its own interval — per-window IPC
and MPKI come from the same formula definitions as the whole-run
numbers, just evaluated over the differenced values.

Windows are computed inside the simulation itself (the scoreboard
invokes the recorder at instruction-count boundaries), never from wall
clock or iteration order, so a given seed produces a bit-identical
series whether the run executes serially or inside a worker process.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from . import formulas
from .registry import MetricRegistry, Number

#: Default window length, in retired instructions.  Chosen so the seed
#: traces (5k-40k instructions) yield a handful-to-dozens of windows.
DEFAULT_WINDOW_INSTRUCTIONS = 2000

#: Counters captured per window.  Kept deliberately small: each window
#: stores one dict of these deltas, and everything downstream (IPC,
#: MPKI, average load latency, the stall-bucket breakdown) derives
#: from them.
WINDOW_COUNTERS: Tuple[str, ...] = (
    "core.instructions",
    "core.cycles",
    "core.branch_mispredicts",
    "mem.loads",
    "mem.load_latency_sum",
    "core.stall.mispredict_cycles",
    "core.stall.frontend_cycles",
    "core.stall.memory_cycles",
)

#: Window counter name per CPI-stack stall bucket (``base`` is the
#: residual: window cycles not attributed to any stall bucket).
STALL_WINDOW_COUNTERS: Dict[str, str] = {
    "mispredict": "core.stall.mispredict_cycles",
    "frontend_bubbles": "core.stall.frontend_cycles",
    "memory": "core.stall.memory_cycles",
}


@dataclass(frozen=True)
class WindowSample:
    """One per-interval measurement: counter deltas plus boundaries."""

    index: int
    start_instruction: int
    end_instruction: int
    values: Dict[str, Number] = field(default_factory=dict)

    @property
    def instructions(self) -> Number:
        return self.values.get("core.instructions", 0)

    @property
    def ipc(self) -> float:
        return formulas.ipc(self.values.get("core.instructions", 0),
                            self.values.get("core.cycles", 0))

    @property
    def mpki(self) -> float:
        return formulas.mpki(self.values.get("core.branch_mispredicts", 0),
                             self.values.get("core.instructions", 0))

    @property
    def average_load_latency(self) -> float:
        return formulas.average_latency(
            self.values.get("mem.load_latency_sum", 0),
            self.values.get("mem.loads", 0))

    @property
    def stall_cycles(self) -> Dict[str, float]:
        """Per-bucket stall cycles attributed inside this window, with
        ``base`` as the unattributed residual (clamped at 0; attribution
        is per-retire while cycles are end-to-end elapsed time, so
        overlap can push the nominal residual slightly negative)."""
        out = {bucket: float(self.values.get(counter, 0))
               for bucket, counter in STALL_WINDOW_COUNTERS.items()}
        cycles = float(self.values.get("core.cycles", 0))
        attributed = math.fsum(v for _, v in sorted(out.items()))
        out["base"] = max(0.0, cycles - attributed)
        return out

    @property
    def stall_fractions(self) -> Dict[str, float]:
        """:attr:`stall_cycles` normalized by window cycles (all zero
        for an empty window)."""
        cycles = float(self.values.get("core.cycles", 0))
        stalls = self.stall_cycles
        if cycles <= 0:
            return {bucket: 0.0 for bucket in stalls}
        return {bucket: v / cycles for bucket, v in stalls.items()}

    def metric(self, name: str) -> Number:
        """A raw counter delta or a derived per-window metric."""
        if name in self.values:
            return self.values[name]
        prop = getattr(type(self), name, None)
        if isinstance(prop, property):
            return prop.fget(self)  # type: ignore[misc]
        raise KeyError(name)

    def to_dict(self) -> Dict[str, object]:
        # Values are emitted key-sorted so serialized windows are
        # canonical: a row that round-tripped through the disk cache
        # (which writes sort_keys JSON) re-serializes byte-identically
        # to a freshly-executed one — archive digests must not depend
        # on cache state.
        return {
            "index": self.index,
            "start_instruction": self.start_instruction,
            "end_instruction": self.end_instruction,
            "values": {k: self.values[k] for k in sorted(self.values)},
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "WindowSample":
        return cls(
            index=int(data["index"]),              # type: ignore[arg-type]
            start_instruction=int(data["start_instruction"]),  # type: ignore[arg-type]
            end_instruction=int(data["end_instruction"]),      # type: ignore[arg-type]
            values=dict(data["values"]),           # type: ignore[arg-type]
        )


class WindowRecorder:
    """Accumulates :class:`WindowSample` deltas from a registry.

    The owner calls :meth:`take` at each interval boundary (instruction
    counts are read from the registry itself) and :meth:`finish` once
    at end of run to flush the final partial window.
    """

    def __init__(self, registry: MetricRegistry, interval: int,
                 counters: Sequence[str] = WINDOW_COUNTERS) -> None:
        if interval <= 0:
            raise ValueError("window interval must be positive")
        self.interval = int(interval)
        self.counters = tuple(counters)
        self.windows: List[WindowSample] = []
        self._registry = registry
        # Counter cells resolved once up front: take() then reads a
        # handful of attribute values instead of materializing a full
        # registry snapshot, so per-boundary cost stays flat no matter
        # how many metrics the producers register.
        self._cells = tuple(registry.counter(name)
                            for name in self.counters)
        self._instr = registry.counter("core.instructions")
        self._prev: Dict[str, Number] = {
            name: cell.value
            for name, cell in zip(self.counters, self._cells)}
        self._last_boundary: int = int(self._instr.value)

    def take(self) -> Optional[WindowSample]:
        """Close the current window at the present counter values."""
        end = int(self._instr.value)
        if end <= self._last_boundary:
            return None
        prev = self._prev
        values: Dict[str, Number] = {
            name: cell.value - prev[name]
            for name, cell in zip(self.counters, self._cells)}
        sample = WindowSample(
            index=len(self.windows),
            start_instruction=self._last_boundary,
            end_instruction=end,
            values=values,
        )
        self.windows.append(sample)
        self._prev = {name: cell.value
                      for name, cell in zip(self.counters, self._cells)}
        self._last_boundary = end
        return sample

    def finish(self) -> List[WindowSample]:
        """Flush any trailing partial window and return the series."""
        self.take()
        return self.windows

    # -- checkpointing (state_dict protocol) --------------------------------
    # ``interval`` and ``counters`` ride along so the owner can rebuild a
    # matching recorder against the restored registry before loading.

    def state_dict(self) -> dict[str, object]:
        return {
            "interval": self.interval,
            "counters": list(self.counters),
            "windows": [w.to_dict() for w in self.windows],
            "prev": dict(self._prev),
            "last_boundary": self._last_boundary,
        }

    def load_state_dict(self, state: dict[str, object]) -> None:
        if int(state["interval"]) != self.interval:
            raise ValueError(
                f"window recorder: interval {self.interval} != checkpoint "
                f"{state['interval']}")
        if tuple(state["counters"]) != self.counters:
            raise ValueError(
                "window recorder: counter set differs from checkpoint")
        self.windows = [WindowSample.from_dict(w)
                        for w in state["windows"]]
        self._prev = {str(name): value
                      for name, value in state["prev"].items()}
        self._last_boundary = int(state["last_boundary"])


def window_metric_series(windows: Sequence[WindowSample], attr: str,
                         warmup: int = 0) -> List[float]:
    """Extract a per-window time series, optionally dropping warmup.

    ``attr`` is a derived name (``"ipc"``, ``"mpki"``,
    ``"average_load_latency"``) or a raw window counter; ``warmup``
    windows are excluded from the front of the series.
    """
    return [float(w.metric(attr)) for w in windows[warmup:]]


def make_on_window(recorder: WindowRecorder) -> Callable[[], None]:
    """Adapt a recorder to the scoreboard's ``on_window`` callback."""
    def on_window() -> None:
        recorder.take()
    return on_window
