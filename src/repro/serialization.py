"""Config and result serialization (JSON-compatible dicts).

Lets external tools consume the Table I data, lets design-exploration
scripts persist hypothetical configurations (see
``examples/design_exploration.py``), and gives the execution engine its
wire/cache formats: worker payloads ship configs via
:func:`config_to_dict`, and the disk cache stores
:class:`~repro.engine.results.SliceMetrics` rows via
:func:`metrics_to_dict` / :func:`metrics_from_dict`.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, Optional

from .config import (
    BranchPredictorConfig,
    CacheConfig,
    GenerationConfig,
    MemoryLatencyConfig,
    PrefetchConfig,
    TlbConfig,
    config_fingerprint,  # noqa: F401  (re-export: cache-key helper)
)

_NESTED_TYPES = {
    "l1i": CacheConfig,
    "l1d": CacheConfig,
    "l2": CacheConfig,
    "l3": CacheConfig,
    "l1i_tlb": TlbConfig,
    "l1d_tlb": TlbConfig,
    "l15d_tlb": TlbConfig,
    "l2_tlb": TlbConfig,
    "branch": BranchPredictorConfig,
    "prefetch": PrefetchConfig,
    "memlat": MemoryLatencyConfig,
}


def config_to_dict(config: GenerationConfig) -> Dict[str, Any]:
    """Recursively convert a generation config to plain dicts/lists."""
    out = dataclasses.asdict(config)
    # Tuples (fp_latencies) become lists via asdict already on round-trip;
    # normalise for JSON friendliness.
    out["fp_latencies"] = list(out["fp_latencies"])
    return out


def config_from_dict(data: Dict[str, Any]) -> GenerationConfig:
    """Rebuild a :class:`GenerationConfig` from :func:`config_to_dict`
    output (raises ``TypeError``/``ValueError`` on malformed input)."""
    kwargs = dict(data)
    for field, cls in _NESTED_TYPES.items():
        value = kwargs.get(field)
        if value is None:
            continue
        if not isinstance(value, dict):
            raise TypeError(f"field {field!r} must be a mapping")
        kwargs[field] = cls(**value)
    if "fp_latencies" in kwargs:
        kwargs["fp_latencies"] = tuple(kwargs["fp_latencies"])
    return GenerationConfig(**kwargs)


def config_to_json(config: GenerationConfig, indent: Optional[int] = 2) -> str:
    import json

    return json.dumps(config_to_dict(config), indent=indent)


def config_from_json(text: str) -> GenerationConfig:
    import json

    return config_from_dict(json.loads(text))


# ---------------------------------------------------------------------------
# Population results (the engine's cache payload format)
# ---------------------------------------------------------------------------

def metrics_to_dict(metrics: "Any") -> Dict[str, Any]:
    """One :class:`~repro.engine.results.SliceMetrics` row as a plain
    dict (JSON-safe; schema-versioned, windows included)."""
    return metrics.to_dict()


def metrics_from_dict(data: Dict[str, Any]) -> "Any":
    """Rebuild a :class:`~repro.engine.results.SliceMetrics` row.

    Accepts current-schema rows and schema-1 (pre-window) rows; raises
    ``ValueError`` on rows from a newer schema and ``TypeError`` on
    unknown/missing fields.
    """
    from .engine.results import SliceMetrics

    return SliceMetrics.from_dict(data)


def population_to_dict(population: "Any") -> Dict[str, Any]:
    """A whole :class:`~repro.engine.results.PopulationResult` as plain
    dicts, for JSON export or archival of a population run."""
    from .engine.results import RESULT_SCHEMA_VERSION

    return {
        "schema": RESULT_SCHEMA_VERSION,
        "metrics": [metrics_to_dict(m) for m in population.metrics],
    }


def population_from_dict(data: Dict[str, Any]) -> "Any":
    from .engine.results import (READABLE_SCHEMAS, RESULT_SCHEMA_VERSION,
                                 PopulationResult)

    schema = data.get("schema", 1)
    if schema not in READABLE_SCHEMAS:
        raise ValueError(
            f"unsupported population schema {schema!r} "
            f"(this build reads <= {RESULT_SCHEMA_VERSION})")
    return PopulationResult(
        metrics=[metrics_from_dict(m) for m in data["metrics"]])


def population_to_json(population: "Any",
                       indent: Optional[int] = None) -> str:
    """Canonical archive bytes: keys sorted, so equal populations
    always serialize byte-identically (the run ledger digests these
    bytes, and `repro regress` inputs are compared file-to-file)."""
    import json

    return json.dumps(population_to_dict(population), indent=indent,
                      sort_keys=True)


def population_from_json(text: str) -> "Any":
    import json

    return population_from_dict(json.loads(text))
