"""GenerationConfig serialization (JSON-compatible dicts).

Lets external tools consume the Table I data, and lets design-exploration
scripts persist hypothetical configurations (see
``examples/design_exploration.py``).
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, Optional

from .config import (
    BranchPredictorConfig,
    CacheConfig,
    GenerationConfig,
    MemoryLatencyConfig,
    PrefetchConfig,
    TlbConfig,
)

_NESTED_TYPES = {
    "l1i": CacheConfig,
    "l1d": CacheConfig,
    "l2": CacheConfig,
    "l3": CacheConfig,
    "l1i_tlb": TlbConfig,
    "l1d_tlb": TlbConfig,
    "l15d_tlb": TlbConfig,
    "l2_tlb": TlbConfig,
    "branch": BranchPredictorConfig,
    "prefetch": PrefetchConfig,
    "memlat": MemoryLatencyConfig,
}


def config_to_dict(config: GenerationConfig) -> Dict[str, Any]:
    """Recursively convert a generation config to plain dicts/lists."""
    out = dataclasses.asdict(config)
    # Tuples (fp_latencies) become lists via asdict already on round-trip;
    # normalise for JSON friendliness.
    out["fp_latencies"] = list(out["fp_latencies"])
    return out


def config_from_dict(data: Dict[str, Any]) -> GenerationConfig:
    """Rebuild a :class:`GenerationConfig` from :func:`config_to_dict`
    output (raises ``TypeError``/``ValueError`` on malformed input)."""
    kwargs = dict(data)
    for field, cls in _NESTED_TYPES.items():
        value = kwargs.get(field)
        if value is None:
            continue
        if not isinstance(value, dict):
            raise TypeError(f"field {field!r} must be a mapping")
        kwargs[field] = cls(**value)
    if "fp_latencies" in kwargs:
        kwargs["fp_latencies"] = tuple(kwargs["fp_latencies"])
    return GenerationConfig(**kwargs)


def config_to_json(config: GenerationConfig, indent: Optional[int] = 2) -> str:
    import json

    return json.dumps(config_to_dict(config), indent=indent)


def config_from_json(text: str) -> GenerationConfig:
    import json

    return config_from_dict(json.loads(text))
