"""The ``state_dict`` protocol: checkpointable state for every layer.

Every stateful component in the tree — frontend predictors, the memory
hierarchy and its prefetchers, the uop-cache mode machine, the
scoreboard's in-flight timing state, the metric registry and the energy
ledger — implements the same two methods, PyTorch-style:

``state_dict() -> dict``
    A **JSON-serializable** snapshot of the component's mutable state.
    Derived/rebuildable values (sizes computed in ``__init__``, gauge
    readers, formula definitions, cipher callables) are *not* captured;
    only what evolves during simulation is.

``load_state_dict(state) -> None``
    Restore the component **in place** to exactly that snapshot.  In
    place matters: gauges capture structure objects at bind time, so
    restore never swaps a cache/TLB object out from under its reader.

Round-trip invariant (pinned by ``tests/test_state.py``): for any
component ``c`` and fresh peer ``c2`` built with the same config,
``c2.load_state_dict(c.state_dict())`` makes ``c2`` bit-identical to
``c`` for all future inputs.

JSON-ability conventions, shared via the helpers below:

- ``OrderedDict`` (LRU order is architectural state) -> list of
  ``[key, value]`` pairs via :func:`to_pairs` / :func:`from_pairs`;
  plain dict keyed by ints is serialized the same way (JSON objects
  would stringify the keys).
- ``deque`` -> plain list (``maxlen`` is config, re-applied by the
  component).
- ``set`` -> sorted list.
- enums (``Kind``, ``UocMode``) -> their ``.name`` / ``.value``.
- tuples -> lists (JSON has no tuple); components re-tuple on load.

On top of the protocol, :meth:`repro.core.simulator.GenerationSimulator
.save_state` produces a versioned whole-simulator checkpoint document,
and :func:`save_checkpoint` / :func:`load_checkpoint` give it a stable
on-disk form (sorted-key JSON) used by the engine's warmup-snapshot
reuse and the ``repro checkpoint`` CLI.  See ``docs/checkpoint.md``.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, Iterable, List, Mapping, Tuple, Union

#: Bump when the checkpoint document layout (or any component's
#: state_dict shape) changes incompatibly.
#:
#: 1 — initial protocol: per-component state dicts under
#:     ``components``, scoreboard in-flight timing state, window
#:     recorder state, sink sequence continuation.
CHECKPOINT_SCHEMA_VERSION = 1


# ---------------------------------------------------------------------------
# Mapping <-> pair-list helpers
# ---------------------------------------------------------------------------

def to_pairs(mapping: Mapping[Any, Any]) -> List[List[Any]]:
    """A mapping as an order-preserving ``[[key, value], ...]`` list.

    JSON objects stringify keys and (nominally) unorder them; recency
    order in an ``OrderedDict`` is architectural state (LRU position),
    so mappings ship as pair lists.
    """
    return [[k, v] for k, v in mapping.items()]


def from_pairs(pairs: Iterable[Iterable[Any]]) -> "OrderedDict[Any, Any]":
    """Rebuild an ``OrderedDict`` from :func:`to_pairs` output."""
    from collections import OrderedDict

    out: "OrderedDict[Any, Any]" = OrderedDict()
    for k, v in pairs:
        out[k] = v
    return out


def dict_from_pairs(pairs: Iterable[Iterable[Any]]) -> Dict[Any, Any]:
    """Rebuild a plain dict (insertion order still preserved)."""
    return {k: v for k, v in pairs}


# ---------------------------------------------------------------------------
# Checkpoint file IO
# ---------------------------------------------------------------------------

def checkpoint_document(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Wrap a simulator state payload in the versioned envelope."""
    from . import __version__

    return {
        "schema": CHECKPOINT_SCHEMA_VERSION,
        "version": __version__,
        **payload,
    }


def validate_checkpoint(doc: Dict[str, Any]) -> Dict[str, Any]:
    """Schema-check a checkpoint document (raises ``ValueError``)."""
    if not isinstance(doc, dict):
        raise ValueError("checkpoint must be a JSON object")
    schema = doc.get("schema")
    if schema != CHECKPOINT_SCHEMA_VERSION:
        raise ValueError(
            f"unsupported checkpoint schema {schema!r} "
            f"(this build reads {CHECKPOINT_SCHEMA_VERSION})")
    return doc


def checkpoint_to_json(doc: Dict[str, Any]) -> str:
    """Canonical serialized form: sorted keys, so byte-identity of two
    checkpoints is exactly state-identity."""
    return json.dumps(doc, sort_keys=True)


def save_checkpoint(path: Union[str, os.PathLike],
                    doc: Dict[str, Any]) -> None:
    """Write a checkpoint document as canonical sorted-key JSON."""
    validate_checkpoint(doc)
    path = os.fspath(path)
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(path, "w", encoding="utf-8") as f:
        f.write(checkpoint_to_json(doc) + "\n")


def load_checkpoint(path: Union[str, os.PathLike]) -> Dict[str, Any]:
    """Read and schema-check a checkpoint file."""
    with open(os.fspath(path), "r", encoding="utf-8") as f:
        return validate_checkpoint(json.load(f))


def roundtrip(state: Dict[str, Any]) -> Dict[str, Any]:
    """``state`` pushed through JSON and back.

    Components feed their ``state_dict()`` output through this before
    ``load_state_dict`` in tests, so any non-JSON-safe value (a tuple
    that must survive as a tuple, an int key, a raw object) fails
    loudly at the component that produced it rather than at engine
    fan-out time.
    """
    return json.loads(json.dumps(state, sort_keys=True))
