"""The fast-path switch: one knob, two provably equivalent engines.

The simulator has two implementations of its hottest code:

- the **reference path** — per-record ``TraceRecord`` objects through
  ``Scoreboard.run`` and unmemoized predictor hash functions; the
  readable, obviously-correct spelling every test is written against;
- the **fast path** — decode-once :class:`~repro.traces.compiled
  .CompiledTrace` arrays through the scoreboard's flat loop, plus
  memoized pure hash functions inside the SHP/LHP (same inputs, same
  outputs, computed once).

Results are bit-identical by construction — the fast path only changes
*how often* pure functions are evaluated and *how* record fields are
stored, never any computed value — and the equivalence is pinned by
``tests/test_fastpath.py`` (metrics snapshots, window series, event
streams, checkpoints; serial vs workers, fast vs reference).

The knob: ``REPRO_FAST`` in the environment (default **on**; ``off`` /
``0`` / ``no`` / ``false`` select the reference path), overridden
per-call by the ``fast=`` keyword on :func:`repro.run`,
:func:`repro.run_population` and friends.  Because the two paths
produce identical results, the knob is *transport-only*: it never
enters task fingerprints, cache keys, or ledger archive digests.
"""

from __future__ import annotations

import os
from typing import Optional

#: Environment switch; any of these values selects the reference path.
FAST_ENV = "REPRO_FAST"
_DISABLE_VALUES = ("0", "off", "no", "false")


def fast_enabled(override: Optional[bool] = None) -> bool:
    """Resolve the effective fast-path state (explicit arg beats env)."""
    if override is not None:
        return bool(override)
    value = os.environ.get(FAST_ENV, "").strip().lower()
    return value not in _DISABLE_VALUES
