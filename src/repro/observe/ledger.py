"""The run ledger: a durable, append-only record of every engine run.

``BENCH_*.json`` snapshots a single PR's perf numbers and ``repro
metrics --diff`` compares two dumps you happened to save — but nothing
in the repo remembered *its own runs*.  The ledger closes that gap:
every ``repro.run`` / ``repro.run_population`` invocation appends one
provenance-stamped JSON line to ``<cache_root>/ledger/runs.jsonl``,
recording what was run (config fingerprints, trace/task fingerprints,
window/warmup knobs), what it cost (wall-clock phase breakdown, worker
count, per-task-kind cache hits), and what came out (per-slice and
per-generation result summaries plus a digest of the archive bytes).
``python -m repro runs {list,show,compare,gc}`` inspects it, and
``repro regress --ledger REF`` gates against it.

Ledger writes live **beside** results — under the cache root, never
inside a result payload or archive — so archives stay bit-identical
with the ledger on or off (pinned by ``tests/test_ledger.py``).
Appends are single ``write()`` calls on an ``O_APPEND`` handle, so
concurrent runs interleave whole lines; a corrupt line (torn write,
version skew) is skipped on read, never fatal.  The ledger is *not* a
cache: replaying a record re-runs the simulation; the record exists so
you can tell whether the re-run changed.

Disable with ``REPRO_LEDGER=off`` (or pass ``ledger=False`` to the run
APIs); the wall-clock reads here are sanctioned by the simlint SIM002
``wallclock_allow`` list.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

#: Version of the ledger record format.
LEDGER_SCHEMA_VERSION = 1

#: Ledger location under the cache root.
LEDGER_DIRNAME = "ledger"
LEDGER_FILENAME = "runs.jsonl"

#: Environment switch: any of these values disables ledger writes.
_DISABLE_VALUES = ("0", "off", "no", "false")


def ledger_enabled(override: Optional[bool] = None) -> bool:
    """Resolve the effective on/off state (explicit arg beats env)."""
    if override is not None:
        return bool(override)
    value = os.environ.get("REPRO_LEDGER", "").strip().lower()
    return value not in _DISABLE_VALUES


def ledger_path(cache_dir: Optional[os.PathLike] = None) -> Path:
    """``<cache_root>/ledger/runs.jsonl`` (cache root honours
    ``REPRO_CACHE_DIR``)."""
    from ..engine.cache import default_cache_dir

    root = Path(cache_dir) if cache_dir is not None else default_cache_dir()
    return root / LEDGER_DIRNAME / LEDGER_FILENAME


def record_id(record: Dict[str, Any]) -> str:
    """Content-addressed short id: SHA-256 over the canonical record
    JSON (timestamp included, so repeated identical runs stay distinct
    records), truncated to 12 hex chars."""
    text = json.dumps({k: v for k, v in record.items() if k != "id"},
                      sort_keys=True, default=str)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:12]


def utc_timestamp() -> str:
    """Current UTC wall time, ISO-8601 with seconds precision."""
    return time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())


# ---------------------------------------------------------------------------
# Record construction
# ---------------------------------------------------------------------------

def _summarize_slices(metrics: Sequence[Any]) -> List[Dict[str, Any]]:
    """Compact per-slice result rows (full precision, no windows)."""
    return [{
        "trace": m.trace_name,
        "family": m.family,
        "generation": m.generation,
        "ipc": m.ipc,
        "mpki": m.mpki,
        "average_load_latency": m.average_load_latency,
        "cpi_base": m.cpi_base,
        "cpi_mispredict": m.cpi_mispredict,
        "cpi_frontend": m.cpi_frontend,
        "cpi_memory": m.cpi_memory,
    } for m in metrics]


def _summarize_generations(population: Any) -> Dict[str, Dict[str, float]]:
    gens = []
    for m in population.metrics:
        if m.generation not in gens:
            gens.append(m.generation)
    return {
        g: {
            "slices": len(population.for_generation(g)),
            "ipc": population.mean(g, "ipc"),
            "mpki": population.mean(g, "mpki"),
            "average_load_latency": population.mean(
                g, "average_load_latency"),
        }
        for g in gens
    }


def _schema_stamp() -> Dict[str, Any]:
    from .. import __version__
    from ..engine.results import RESULT_SCHEMA_VERSION
    from ..engine.tasks import ENGINE_SCHEMA_VERSION
    from ..state import CHECKPOINT_SCHEMA_VERSION

    return {
        "schema": LEDGER_SCHEMA_VERSION,
        "version": __version__,
        "engine_schema": ENGINE_SCHEMA_VERSION,
        "result_schema": RESULT_SCHEMA_VERSION,
        "checkpoint_schema": CHECKPOINT_SCHEMA_VERSION,
    }


def _stats_stamp(stats: Any) -> Dict[str, Any]:
    return {
        "workers": stats.workers,
        "cache_mode": stats.cache_mode,
        "tasks_total": stats.tasks_total,
        "cache_hits": stats.cache_hits,
        "executed": stats.executed,
        "wall_seconds": stats.wall_seconds,
        # Throughput fields (older EngineStats objects lack them).
        "instructions_total": getattr(stats, "instructions_total", 0),
        "instructions_executed": getattr(stats, "instructions_executed", 0),
        "kips": getattr(stats, "kips", 0.0),
        "phase_breakdown": dict(stats.phase_breakdown),
        "kind_stats": {kind: dict(counts)
                       for kind, counts in stats.kind_stats.items()},
    }


def population_record(population: Any, stats: Any, *,
                      params: Dict[str, Any],
                      config_fingerprints: Dict[str, str],
                      task_fingerprints: Sequence[str]) -> Dict[str, Any]:
    """Build the ledger record for one population run.

    ``task_fingerprints`` is digested (sorted SHA-256) rather than
    stored — the set identifies the exact task matrix without bloating
    the line; ``archive_digest`` ties the record to the archive bytes
    ``population_to_json`` would produce.
    """
    from ..serialization import population_to_json

    task_digest = hashlib.sha256(
        "\n".join(sorted(task_fingerprints)).encode("utf-8")).hexdigest()
    record: Dict[str, Any] = {
        **_schema_stamp(),
        "kind": "population",
        "timestamp": utc_timestamp(),
        "params": dict(params),
        "config_fingerprints": dict(config_fingerprints),
        "tasks_digest": task_digest,
        "engine": _stats_stamp(stats),
        "summary": {
            "generations": _summarize_generations(population),
            "slices": _summarize_slices(population.metrics),
        },
        "archive_digest": hashlib.sha256(
            population_to_json(population).encode("utf-8")).hexdigest(),
    }
    record["id"] = record_id(record)
    return record


def single_run_record(result: Any, *, generation: str,
                      config_fingerprint: str,
                      spec: Optional[Dict[str, Any]],
                      corunners: int, warmup: int,
                      wall_seconds: float,
                      instructions: int = 0) -> Dict[str, Any]:
    """Build the ledger record for one ``repro.run`` invocation.

    ``instructions`` is the measured-segment length; with
    ``wall_seconds`` it yields the run's KIPS throughput stamp."""
    record: Dict[str, Any] = {
        **_schema_stamp(),
        "kind": "run",
        "timestamp": utc_timestamp(),
        "params": {
            "generation": generation,
            "trace": spec,
            "corunners": corunners,
            "warmup": warmup,
        },
        "config_fingerprints": {generation: config_fingerprint},
        "engine": {
            "wall_seconds": wall_seconds,
            "instructions": int(instructions),
            "kips": (instructions / 1000.0 / wall_seconds
                     if wall_seconds > 0 and instructions else 0.0),
        },
        "summary": {
            "ipc": result.ipc,
            "mpki": result.mpki,
            "average_load_latency": result.average_load_latency,
        },
    }
    record["id"] = record_id(record)
    return record


# ---------------------------------------------------------------------------
# File IO
# ---------------------------------------------------------------------------

def append_record(record: Dict[str, Any],
                  cache_dir: Optional[os.PathLike] = None) -> Optional[str]:
    """Append one record (one sorted-key JSON line) to the ledger.

    Returns the record id, or ``None`` when the ledger directory is
    unwritable — a run must never fail because its log could not.
    """
    path = ledger_path(cache_dir)
    line = json.dumps(record, sort_keys=True) + "\n"
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        with open(path, "a", encoding="utf-8") as f:
            f.write(line)
    except OSError:
        return None
    return str(record.get("id", ""))


def read_ledger(cache_dir: Optional[os.PathLike] = None
                ) -> List[Dict[str, Any]]:
    """All readable records, oldest first (corrupt lines skipped)."""
    path = ledger_path(cache_dir)
    records: List[Dict[str, Any]] = []
    try:
        with open(path, "r", encoding="utf-8") as f:
            lines = f.readlines()
    except OSError:
        return records
    for line in lines:
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except ValueError:
            continue
        if isinstance(record, dict):
            records.append(record)
    return records


def find_record(records: Sequence[Dict[str, Any]],
                ref: str) -> Optional[Dict[str, Any]]:
    """Resolve a user reference: a record id (or unique prefix), or a
    1-based position from the end (``-1`` / ``1`` = most recent)."""
    ref = ref.strip()
    if ref.lstrip("-").isdigit():
        index = abs(int(ref))
        if 1 <= index <= len(records):
            return records[-index]
        return None
    matches = [r for r in records
               if str(r.get("id", "")).startswith(ref)]
    if len(matches) == 1:
        return matches[0]
    if matches:  # ambiguous prefix: prefer the most recent exact id
        exact = [r for r in matches if r.get("id") == ref]
        return exact[-1] if exact else None
    return None


def gc_ledger(keep: int, cache_dir: Optional[os.PathLike] = None) -> int:
    """Drop all but the newest ``keep`` records (atomic rewrite).

    Returns the number of records removed.  ``keep <= 0`` empties the
    ledger.
    """
    path = ledger_path(cache_dir)
    records = read_ledger(cache_dir)
    kept = records[-keep:] if keep > 0 else []
    removed = len(records) - len(kept)
    if removed <= 0:
        return 0
    text = "".join(json.dumps(r, sort_keys=True) + "\n" for r in kept)
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as f:
                f.write(text)
            os.replace(tmp, path)
        finally:
            if os.path.exists(tmp):  # pragma: no cover - replace failed
                os.unlink(tmp)
    except OSError:
        return 0
    return removed


# ---------------------------------------------------------------------------
# Comparison (the `runs compare` view)
# ---------------------------------------------------------------------------

def compare_records(a: Dict[str, Any], b: Dict[str, Any]) -> Dict[str, Any]:
    """Field-level comparison of two ledger records.

    Reports provenance drift (schema/version/config/task fingerprints),
    knob differences (params), engine-cost deltas, and per-generation
    summary deltas — the ``runs compare`` document.
    """
    def _delta(key_path: str, va: Any, vb: Any) -> Dict[str, Any]:
        entry: Dict[str, Any] = {"a": va, "b": vb}
        if isinstance(va, (int, float)) and isinstance(vb, (int, float)) \
                and not isinstance(va, bool) and not isinstance(vb, bool):
            entry["delta"] = vb - va
        return entry

    provenance: Dict[str, Any] = {}
    for key in ("schema", "version", "engine_schema", "result_schema",
                "checkpoint_schema", "kind", "tasks_digest",
                "archive_digest"):
        if a.get(key) != b.get(key):
            provenance[key] = _delta(key, a.get(key), b.get(key))
    fp_a = a.get("config_fingerprints", {}) or {}
    fp_b = b.get("config_fingerprints", {}) or {}
    for gen in sorted(set(fp_a) | set(fp_b)):
        if fp_a.get(gen) != fp_b.get(gen):
            provenance[f"config_fingerprints.{gen}"] = _delta(
                gen, fp_a.get(gen), fp_b.get(gen))

    params: Dict[str, Any] = {}
    pa, pb = a.get("params", {}) or {}, b.get("params", {}) or {}
    for key in sorted(set(pa) | set(pb)):
        if pa.get(key) != pb.get(key):
            params[key] = _delta(key, pa.get(key), pb.get(key))

    engine: Dict[str, Any] = {}
    ea, eb = a.get("engine", {}) or {}, b.get("engine", {}) or {}
    for key in ("workers", "cache_mode", "tasks_total", "cache_hits",
                "executed", "wall_seconds", "instructions",
                "instructions_total", "instructions_executed", "kips"):
        if ea.get(key) != eb.get(key):
            engine[key] = _delta(key, ea.get(key), eb.get(key))

    summary: Dict[str, Any] = {}
    ga = (a.get("summary", {}) or {}).get("generations", {}) or {}
    gb = (b.get("summary", {}) or {}).get("generations", {}) or {}
    for gen in sorted(set(ga) | set(gb)):
        row_a, row_b = ga.get(gen, {}), gb.get(gen, {})
        for metric in ("ipc", "mpki", "average_load_latency"):
            va, vb = row_a.get(metric), row_b.get(metric)
            if va != vb:
                summary[f"{gen}.{metric}"] = _delta(metric, va, vb)
    if a.get("kind") == "run" or b.get("kind") == "run":
        sa = a.get("summary", {}) or {}
        sb = b.get("summary", {}) or {}
        for metric in ("ipc", "mpki", "average_load_latency"):
            if metric in sa or metric in sb:
                if sa.get(metric) != sb.get(metric):
                    summary[metric] = _delta(metric, sa.get(metric),
                                             sb.get(metric))

    return {
        "schema": LEDGER_SCHEMA_VERSION,
        "a": {"id": a.get("id"), "timestamp": a.get("timestamp")},
        "b": {"id": b.get("id"), "timestamp": b.get("timestamp")},
        "provenance": provenance,
        "params": params,
        "engine": engine,
        "summary": summary,
        "identical_results": (a.get("archive_digest") is not None
                              and a.get("archive_digest")
                              == b.get("archive_digest")),
    }
