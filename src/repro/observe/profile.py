"""Engine self-profiling: where the *host's* time goes.

The simulator side of this package records simulated cycles; this
module is about wall-clock — the measurement substrate for host-side
optimisation work.  The engine (:mod:`repro.engine.runner`, the one
layer sanctioned to read wall clocks by simlint SIM002's
``wallclock_allow``) fills an :class:`~repro.engine.runner.EngineStats`
with a ``phase_breakdown`` (seconds per engine phase) and per-task
:class:`TaskTiming` rows; this module turns those into reports:
the N slowest (trace x generation) tasks and the serial-vs-worker
throughput comparison behind ``python -m repro population --profile``.

Nothing here reads a clock itself, so it stays importable from
simulation code without widening the SIM002 allowlist.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence

#: Engine phase names, in reporting order.
PHASES = ("fingerprint", "cache_lookup", "execute", "cache_store")


@dataclass(frozen=True)
class TaskTiming:
    """Wall-clock cost of one executed task (cache hits have none)."""

    #: Human label, e.g. ``"population specint_like/s7x12000 gen=M3"``.
    label: str
    seconds: float


def slowest_tasks(timings: Sequence[TaskTiming],
                  n: int = 10) -> List[TaskTiming]:
    """The ``n`` slowest tasks, slowest first (ties broken by label so
    the report is deterministic for equal-cost tasks)."""
    ranked = sorted(timings, key=lambda t: (-t.seconds, t.label))
    return ranked[:max(0, n)]


def kind_hit_rates(kind_stats) -> List[str]:
    """Per-task-kind cache hit-rate lines, kinds sorted for stable
    output — the warmup-vs-measure-vs-pipetrace view of
    ``EngineStats.kind_stats``."""
    lines: List[str] = []
    for kind in sorted(kind_stats):
        counts = kind_stats[kind]
        hits = int(counts.get("hits", 0))
        executed = int(counts.get("executed", 0))
        total = hits + executed
        rate = 100.0 * hits / total if total > 0 else 0.0
        lines.append(f"    {kind:<12s} {rate:5.1f}% hit "
                     f"({hits}/{total} cached, {executed} executed)")
    return lines


def describe_profile(stats, top: int = 10) -> str:
    """Render one engine run's profile (an ``EngineStats`` with
    ``phase_breakdown``/``task_timings`` filled in) as text."""
    lines: List[str] = ["engine profile:"]
    breakdown = dict(stats.phase_breakdown)
    total = stats.wall_seconds or 0.0
    accounted = math.fsum(breakdown.get(p, 0.0) for p in PHASES)
    lines.append(f"  wall {total:.3f}s over {stats.tasks_total} tasks "
                 f"({stats.cache_hits} cached, {stats.executed} executed, "
                 f"workers={stats.workers})")
    lines.append("  phase breakdown:")
    for phase in PHASES:
        seconds = breakdown.get(phase, 0.0)
        pct = 100.0 * seconds / total if total > 0 else 0.0
        lines.append(f"    {phase:<14s} {seconds:8.3f}s  {pct:5.1f}%")
    other = max(0.0, total - accounted)
    pct = 100.0 * other / total if total > 0 else 0.0
    lines.append(f"    {'other':<14s} {other:8.3f}s  {pct:5.1f}%")
    # Worker-side trace preparation overlaps the execute phase (it is
    # not part of `accounted`); render it as execute sub-phases.
    for sub in ("trace_generate", "trace_compile"):
        seconds = breakdown.get(sub, 0.0)
        if seconds:
            pct = 100.0 * seconds / total if total > 0 else 0.0
            lines.append(f"    {sub:<14s} {seconds:8.3f}s  {pct:5.1f}% "
                         f"(inside execute)")

    trace_stats = getattr(stats, "trace_stats", None) or {}
    if trace_stats:
        generated = int(trace_stats.get("generated", 0))
        compiled = int(trace_stats.get("compiled", 0))
        memo_hits = int(trace_stats.get("memo_hits", 0))
        store_hits = int(trace_stats.get("store_hits", 0))
        store_misses = int(trace_stats.get("store_misses", 0))
        lines.append(f"  trace prep: {generated} generated, "
                     f"{compiled} compiled, {memo_hits} memo hits")
        looked_up = store_hits + store_misses
        if looked_up:
            rate = 100.0 * store_hits / looked_up
            lines.append(f"  compiled store: {rate:5.1f}% hit "
                         f"({store_hits}/{looked_up} lookups)")

    instructions = int(getattr(stats, "instructions_executed", 0) or 0)
    kips = getattr(stats, "kips", 0.0)
    if instructions and kips:
        lines.append(f"  throughput: {kips:.1f} kips "
                     f"({instructions} instructions simulated)")

    kind_stats = getattr(stats, "kind_stats", None) or {}
    if kind_stats:
        lines.append("  cache hit-rate by task kind:")
        lines.extend(kind_hit_rates(kind_stats))

    timings = list(stats.task_timings)
    if timings:
        serial_seconds = math.fsum(t.seconds for t in timings)
        execute_wall = breakdown.get("execute", 0.0)
        lines.append(
            f"  task time: {serial_seconds:.3f}s of simulation executed "
            f"in {execute_wall:.3f}s of wall"
            + (f" (effective parallelism "
               f"{serial_seconds / execute_wall:.2f}x, workers="
               f"{stats.workers})" if execute_wall > 0 else ""))
        shown = slowest_tasks(timings, top)
        lines.append(f"  slowest {len(shown)} tasks:")
        for t in shown:
            lines.append(f"    {t.seconds:8.3f}s  {t.label}")
    else:
        lines.append("  task time: everything served from cache "
                     "(no tasks executed)")
    return "\n".join(lines)
