"""The pipeline trace event model.

Every event is a small, JSON-able record of one micro-architectural
lifecycle moment, stamped with the *simulated* cycle it belongs to and
a monotonically increasing sequence number assigned by the sink at
emission time.  Four event families cover the producers:

:class:`InstEvent`
    One retired micro-op's full stage lifecycle — fetch / dispatch /
    ready / issue / complete / retire cycle stamps — plus the
    stall-attribution bucket the ``cpi_*`` decomposition already uses
    (``base`` / ``mispredict`` / ``frontend_bubbles`` / ``memory``), so
    a trace line explains its own bubbles.
:class:`BranchEvent`
    One branch resolution: predicted vs. actual direction and target,
    and which predictor component drove the prediction (uBTB, SHP+mBTB,
    VPC, RAS).
:class:`MemEvent`
    One demand access: which level served it (``l1`` / ``l1_late`` /
    ``inflight`` / ``l2`` / ``l3`` / ``dram``), its latency, the TLB
    level that translated it, and whether it was the first demand touch
    of a prefetched line.  :class:`PrefetchEvent` records the issue side.
:class:`UocModeEvent`
    One uop-cache controller mode transition (Filter/Build/Fetch).

Events serialize through :meth:`to_dict` (a plain dict with an
``event`` discriminator) and the canonical :func:`events_to_jsonl` form
— one ``json.dumps(..., sort_keys=True)`` line per event — which is the
byte-identity currency of the determinism tests and the disk format of
``python -m repro pipeview --save``.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from typing import Any, Dict, Iterable, List, Optional, Tuple, Type

#: The stall-attribution buckets, identical to the interval model's
#: CPI-stack keys (:mod:`repro.core.interval`).
STALL_BUCKETS: Tuple[str, ...] = (
    "base", "mispredict", "frontend_bubbles", "memory",
)


@dataclass
class TraceEvent:
    """Base class: the fields every pipeline event carries."""

    #: Emission order within the sink (assigned by the sink, -1 before).
    seq: int
    #: Simulated cycle the event is anchored to.
    cycle: float

    #: Discriminator stored into ``to_dict()["event"]``.
    EVENT = "event"

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {"event": self.EVENT}
        data.update(asdict(self))
        return data


@dataclass
class InstEvent(TraceEvent):
    """One micro-op's stage lifecycle through the scoreboard."""

    EVENT = "inst"

    #: Position of the micro-op in the trace (retire order).
    index: int = 0
    pc: int = 0
    #: :class:`repro.traces.types.Kind` name (``"ALU"``, ``"LOAD"``, ...).
    kind: str = ""
    fetch: float = 0.0
    dispatch: float = 0.0
    ready: float = 0.0
    issue: float = 0.0
    complete: float = 0.0
    #: The dataflow model retires at completion; kept as its own field so
    #: a future in-order-retirement refinement changes data, not schema.
    retire: float = 0.0
    #: Stall-attribution bucket (one of :data:`STALL_BUCKETS`).
    stall: str = "base"
    #: Cycles attributed to ``stall`` for this micro-op (0 for "base").
    stall_cycles: float = 0.0


@dataclass
class BranchEvent(TraceEvent):
    """One branch resolution through the front end."""

    EVENT = "branch"

    pc: int = 0
    kind: str = ""
    #: Predictor component that drove the prediction: ``"ubtb"``,
    #: ``"shp"``, ``"vpc"``, ``"ras"``, or ``"mbtb"``.
    unit: str = "mbtb"
    predicted_taken: Optional[bool] = None
    actual_taken: bool = False
    predicted_target: Optional[int] = None
    actual_target: int = 0
    mispredicted: bool = False
    bubbles: int = 0


@dataclass
class MemEvent(TraceEvent):
    """One demand access through the data-side hierarchy."""

    EVENT = "mem"

    pc: int = 0
    addr: int = 0
    #: Serving level: ``l1`` / ``l1_late`` / ``inflight`` / ``l2`` /
    #: ``l3`` / ``dram``.
    level: str = "l1"
    latency: float = 0.0
    store: bool = False
    #: TLB level that translated the access (``l1``/``l1.5``/``l2``/
    #: ``walk``); a walk is the TLB-miss case.
    tlb_level: str = "l1"
    #: First demand touch of a line a prefetcher installed.
    prefetch_touch: bool = False


@dataclass
class PrefetchEvent(TraceEvent):
    """One prefetch issued into the hierarchy."""

    EVENT = "prefetch"

    addr: int = 0
    #: Engine that issued it: ``"l1"`` (stride/SMS via the L1 path),
    #: ``"buddy"``, or ``"standalone"``.
    engine: str = "l1"
    #: Cache level the line lands in (``"l1"``/``"l2"``/``"l3"``).
    target_level: str = "l1"
    from_dram: bool = False


@dataclass
class UocModeEvent(TraceEvent):
    """One uop-cache controller mode transition (Figure 13)."""

    EVENT = "uoc_mode"

    block_pc: int = 0
    from_mode: str = "filter"
    to_mode: str = "filter"


_EVENT_TYPES: Dict[str, Type[TraceEvent]] = {
    cls.EVENT: cls
    for cls in (InstEvent, BranchEvent, MemEvent, PrefetchEvent,
                UocModeEvent)
}


def event_from_dict(data: Dict[str, Any]) -> TraceEvent:
    """Rebuild a typed event from its :meth:`TraceEvent.to_dict` form."""
    kind = data.get("event")
    cls = _EVENT_TYPES.get(str(kind))
    if cls is None:
        raise ValueError(f"unknown trace event kind {kind!r}")
    kwargs = {k: v for k, v in data.items() if k != "event"}
    return cls(**kwargs)


def events_to_jsonl(events: Iterable[TraceEvent]) -> str:
    """Canonical byte-stable serialization: one sorted-key JSON line per
    event.  Two event streams are identical iff their jsonl forms are
    byte-identical — the form the determinism tests compare."""
    return "\n".join(
        json.dumps(e.to_dict(), sort_keys=True) for e in events)


def events_from_jsonl(text: str) -> List[TraceEvent]:
    """Inverse of :func:`events_to_jsonl` (blank lines ignored)."""
    return [event_from_dict(json.loads(line))
            for line in text.splitlines() if line.strip()]
