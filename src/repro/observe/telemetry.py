"""Live engine telemetry: progress, ETA, and hung-worker detection.

The engine's result channel is the only transport: workers return a
small heartbeat tuple *beside* every task result (wall seconds and the
executing pid, measured by
:func:`repro.engine.tasks.execute_task_heartbeat`), and the host-side
:class:`TelemetryMonitor` folds those arrivals into live state — done
counts, cache hits, instruction throughput, an ETA — that it renders as
a progress line and mirrors into an atomically-rewritten status-file
JSON.  A daemon watchdog thread keeps polling while the engine blocks
on the worker pool, so a worker that stops producing results is flagged
as *suspected hung* after ``hang_threshold`` seconds of silence instead
of stalling the run invisibly forever.

Telemetry is scheduling-only observation: it never touches task
payloads, results, or the cache, so population archives are
bit-identical with telemetry on or off, serial or sharded
(``tests/test_telemetry.py`` pins this).  Wall-clock reads here are
sanctioned by the simlint SIM002 ``wallclock_allow`` list — telemetry
measures the *host*, never the simulation.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

#: Version of the status-file document (and heartbeat record) format.
TELEMETRY_SCHEMA_VERSION = 1

#: Seconds of result-channel silence after which outstanding workers
#: are flagged as suspected hung.
DEFAULT_HANG_THRESHOLD = 30.0

#: Seconds between watchdog polls (status rewrite + silence check).
DEFAULT_POLL_INTERVAL = 1.0


@dataclass(frozen=True)
class TelemetryConfig:
    """Host-side telemetry knobs (``None`` status file = no file)."""

    status_file: Optional[str] = None
    hang_threshold: float = DEFAULT_HANG_THRESHOLD
    poll_interval: float = DEFAULT_POLL_INTERVAL
    #: Warning sink; ``None`` buffers warnings on the monitor only.
    emit: Optional[Callable[[str], None]] = None


@dataclass(frozen=True)
class Heartbeat:
    """One task completion as seen by the monitor."""

    label: str
    kind: str
    seconds: float
    pid: int
    instructions: int
    cached: bool


class TelemetryMonitor:
    """Folds per-task heartbeats into live run state.

    The engine calls :meth:`on_result` for every finished task (cache
    hits included, with ``cached=True``) and :meth:`finish` once at the
    end; :meth:`poll` — usually driven by :func:`start_watchdog` — does
    the silence check and status-file rewrite.  All methods take an
    optional ``now`` so tests can drive a virtual clock.
    """

    def __init__(self, total: int, workers: int = 1,
                 config: Optional[TelemetryConfig] = None,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.total = int(total)
        self.workers = int(workers)
        self.config = config or TelemetryConfig()
        self._clock = clock
        self._lock = threading.Lock()
        self.started_at = clock()
        self.done = 0
        self.cached = 0
        self.executed = 0
        self.instructions = 0
        self.exec_seconds = 0.0
        self.finished = False
        self.warnings: List[str] = []
        self.heartbeats: List[Heartbeat] = []
        #: Last completion time per executing pid (serial runs report
        #: the host pid).
        self.last_seen: Dict[int, float] = {}
        self._last_activity = self.started_at
        self._hang_flagged = False

    # -- ingest -------------------------------------------------------------

    def on_result(self, label: str, kind: str, seconds: float, pid: int,
                  instructions: int = 0, cached: bool = False,
                  now: Optional[float] = None) -> None:
        """Record one finished task (the heartbeat the worker shipped
        beside its result, plus host-side context)."""
        now = self._clock() if now is None else now
        with self._lock:
            self.done += 1
            if cached:
                self.cached += 1
            else:
                self.executed += 1
                self.exec_seconds += float(seconds)
            self.instructions += int(instructions)
            self.last_seen[int(pid)] = now
            self._last_activity = now
            self._hang_flagged = False
            self.heartbeats.append(Heartbeat(
                label=label, kind=kind, seconds=float(seconds),
                pid=int(pid), instructions=int(instructions),
                cached=cached))

    def finish(self, now: Optional[float] = None) -> None:
        """Mark the run complete and write the final status document."""
        with self._lock:
            self.finished = True
        self.write_status(now=now)

    # -- derived state ------------------------------------------------------

    def elapsed(self, now: Optional[float] = None) -> float:
        now = self._clock() if now is None else now
        return max(0.0, now - self.started_at)

    def tasks_per_second(self, now: Optional[float] = None) -> float:
        elapsed = self.elapsed(now)
        return self.done / elapsed if elapsed > 0 else 0.0

    def instructions_per_second(self, now: Optional[float] = None) -> float:
        elapsed = self.elapsed(now)
        return self.instructions / elapsed if elapsed > 0 else 0.0

    def eta_seconds(self, now: Optional[float] = None) -> Optional[float]:
        """Projected seconds to completion, from the mean executed-task
        cost sharded over the workers (``None`` until one task has
        actually executed — cache hits predict nothing)."""
        remaining = self.total - self.done
        if remaining <= 0:
            return 0.0
        if self.executed == 0 or self.exec_seconds <= 0:
            return None
        per_task = self.exec_seconds / self.executed
        return remaining * per_task / max(1, self.workers)

    def silence_seconds(self, now: Optional[float] = None) -> float:
        now = self._clock() if now is None else now
        return max(0.0, now - self._last_activity)

    def suspected_hung(self, now: Optional[float] = None) -> bool:
        """True while tasks are outstanding and the result channel has
        been silent past the configured threshold."""
        if self.finished or self.done >= self.total:
            return False
        return self.silence_seconds(now) > self.config.hang_threshold

    # -- polling / rendering ------------------------------------------------

    def poll(self, now: Optional[float] = None) -> Dict[str, Any]:
        """One watchdog tick: silence check (warn once per silent
        episode) + status-file rewrite.  Returns the status document."""
        now = self._clock() if now is None else now
        if self.suspected_hung(now) and not self._hang_flagged:
            self._hang_flagged = True
            silence = self.silence_seconds(now)
            message = (
                f"engine telemetry: no task finished in {silence:.1f}s "
                f"(threshold {self.config.hang_threshold:.1f}s) with "
                f"{self.total - self.done}/{self.total} tasks "
                f"outstanding — worker suspected hung")
            self.warnings.append(message)
            if self.config.emit is not None:
                self.config.emit(message)
        return self.write_status(now=now)

    def status(self, now: Optional[float] = None) -> Dict[str, Any]:
        """The status-file document (see ``docs/observability.md``)."""
        now = self._clock() if now is None else now
        eta = self.eta_seconds(now)
        return {
            "schema": TELEMETRY_SCHEMA_VERSION,
            "state": "done" if self.finished else "running",
            "total": self.total,
            "done": self.done,
            "cached": self.cached,
            "executed": self.executed,
            "workers": self.workers,
            "instructions": self.instructions,
            "elapsed_seconds": self.elapsed(now),
            "tasks_per_second": self.tasks_per_second(now),
            "instructions_per_second": self.instructions_per_second(now),
            "eta_seconds": eta,
            "silence_seconds": self.silence_seconds(now),
            "suspected_hung": self.suspected_hung(now),
            "warnings": list(self.warnings),
        }

    def write_status(self, now: Optional[float] = None) -> Dict[str, Any]:
        """Atomically rewrite the status file (no-op without one)."""
        doc = self.status(now=now)
        path = self.config.status_file
        if path:
            write_status_file(path, doc)
        return doc

    def render_line(self, now: Optional[float] = None) -> str:
        """One-line live progress summary (the CLI progress line)."""
        eta = self.eta_seconds(now)
        eta_text = f" eta {eta:.0f}s" if eta is not None else ""
        hung = " [suspected hung]" if self.suspected_hung(now) else ""
        return (f"engine: {self.done}/{self.total} tasks "
                f"({self.cached} cached) "
                f"{self.tasks_per_second(now):.1f}/s{eta_text}{hung}")


def write_status_file(path: os.PathLike, doc: Dict[str, Any]) -> None:
    """Atomically replace ``path`` with ``doc`` as sorted-key JSON.

    Readers always see a complete document (temp file + ``os.replace``
    in the destination directory); write failures are swallowed —
    telemetry must never take down the run it is observing.
    """
    path = os.fspath(path)
    directory = os.path.dirname(path) or "."
    try:
        fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as f:
                json.dump(doc, f, sort_keys=True)
            os.replace(tmp, path)
        finally:
            if os.path.exists(tmp):  # pragma: no cover - replace failed
                os.unlink(tmp)
    except OSError:  # pragma: no cover - unwritable status path
        pass


def start_watchdog(monitor: TelemetryMonitor) -> Callable[[], None]:
    """Poll ``monitor`` from a daemon thread until stopped.

    Returns a ``stop()`` callable; the thread wakes every
    ``poll_interval`` seconds, so the status file keeps updating and
    hangs get flagged even while the engine blocks on the worker pool.
    """
    stop_event = threading.Event()
    interval = max(0.005, float(monitor.config.poll_interval))

    def loop() -> None:
        while not stop_event.wait(interval):
            monitor.poll()

    thread = threading.Thread(target=loop, name="repro-telemetry",
                              daemon=True)
    thread.start()

    def stop() -> None:
        stop_event.set()
        thread.join(timeout=5.0)

    return stop
