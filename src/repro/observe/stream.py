"""Chunked trace streaming: durable event persistence past the ring.

The flight recorder (:class:`~repro.observe.sink.TraceSink`) keeps only
the *tail* of a run — a trace longer than the ring loses its beginning.
:class:`StreamingTraceSink` removes that bound by spilling the event
stream to disk in bounded, sorted-key JSONL chunks::

    trace_dir/
        trace-000001.jsonl      # chunk_events events, one JSON line each
        trace-000002.jsonl
        ...
        manifest.json           # chunk index: event counts + byte offsets

Chunks hold exactly ``chunk_events`` events (the final one may be
partial) in emission order, serialized through the same canonical
:func:`~repro.observe.events.events_to_jsonl` form as everything else
in the tracing layer — so for a fixed seed the on-disk bytes are
identical whether the events were produced serially or inside a worker
process, and ``cat trace-*.jsonl`` is itself a valid event stream.

The manifest records, per chunk, the file name, event count, first/last
sequence number, byte size, and the byte offset of the chunk within the
concatenated stream, plus stream totals — so integrity is checkable
without reading any chunk (``manifest event count == emitted``) and a
reader can seek to an arbitrary sequence number by offset arithmetic.

:func:`trace` is the public capture API: a context manager that turns a
target (directory, ``.jsonl`` path, existing sink, or ``None`` for
in-memory) into the right sink and guarantees the flush/manifest write
on exit.  ``repro.run(..., trace_to=...)`` wraps it; hand-wiring a sink
into ``GenerationSimulator(trace_sink=...)`` still works but is the
deprecated spelling (``docs/observability.md``).
"""

from __future__ import annotations

import contextlib
import gzip
import json
import os
from typing import (Any, Dict, Iterable, Iterator, List, Optional,
                    Union)

from .events import (TraceEvent, event_from_dict, events_from_jsonl,
                     events_to_jsonl)
from .sink import TraceSink

#: Bump when the manifest/chunk layout changes.
STREAM_SCHEMA_VERSION = 1

#: Events per chunk file.  Small enough that a chunk is a cheap unit of
#: IO and diffing, large enough that a full default CLI run stays in a
#: handful of files.
DEFAULT_CHUNK_EVENTS = 16384

MANIFEST_NAME = "manifest.json"
_CHUNK_TEMPLATE = "trace-{:06d}.jsonl"
_CHUNK_TEMPLATE_GZ = "trace-{:06d}.jsonl.gz"


class StreamingTraceSink:
    """Spills the event stream to disk in bounded JSONL chunks.

    Drop-in for :class:`TraceSink` at every emission site (producers
    only call ``emit``): events are buffered up to ``chunk_events`` and
    flushed as numbered chunk files; :meth:`close` flushes the final
    partial chunk and writes the manifest.  Nothing is ever dropped —
    ``dropped`` exists for interface parity and is always 0.

    ``meta`` (generation name, trace spec, ...) is carried verbatim
    into the manifest for later identification; it must be JSON-safe.

    ``compress=True`` gzips each chunk (``trace-NNNNNN.jsonl.gz``, with
    a zeroed mtime so the bytes stay deterministic); the manifest's
    ``codec`` records which form the chunks take, and the readers open
    either transparently.  ``zcat trace-*.jsonl.gz`` remains a valid
    event stream — gzip members concatenate.
    """

    def __init__(self, directory: Union[str, os.PathLike],
                 chunk_events: int = DEFAULT_CHUNK_EVENTS,
                 meta: Optional[Dict[str, Any]] = None,
                 compress: bool = False) -> None:
        if chunk_events <= 0:
            raise ValueError("chunk_events must be positive")
        self.directory = os.fspath(directory)
        self.chunk_events = int(chunk_events)
        self.meta = dict(meta) if meta else {}
        self.compress = bool(compress)
        #: Total events emitted into the stream.
        self.emitted = 0
        #: Interface parity with TraceSink; streaming never drops.
        self.dropped = 0
        self.closed = False
        self._buffer: List[TraceEvent] = []
        self._chunks: List[Dict[str, Any]] = []
        self._offset = 0  # byte offset within the concatenated stream
        os.makedirs(self.directory, exist_ok=True)

    def emit(self, event: TraceEvent) -> None:
        """Stamp ``event`` with the next sequence number and buffer it."""
        if self.closed:
            raise ValueError("cannot emit into a closed stream")
        event.seq = self.emitted
        self.emitted += 1
        self._buffer.append(event)
        if len(self._buffer) >= self.chunk_events:
            self._flush_chunk()

    def events(self) -> List[TraceEvent]:
        """The not-yet-flushed tail (interface parity with TraceSink).

        The durable record is on disk; use :func:`iter_stream_events`
        on the directory after :meth:`close` for the full stream.
        """
        return list(self._buffer)

    def _flush_chunk(self) -> None:
        if not self._buffer:
            return
        template = _CHUNK_TEMPLATE_GZ if self.compress else _CHUNK_TEMPLATE
        name = template.format(len(self._chunks) + 1)
        data = (events_to_jsonl(self._buffer) + "\n").encode("utf-8")
        if self.compress:
            # mtime=0 keeps the compressed bytes a pure function of the
            # event stream (the gzip header embeds a timestamp).
            data = gzip.compress(data, mtime=0)
        with open(os.path.join(self.directory, name), "wb") as f:
            f.write(data)
        self._chunks.append({
            "file": name,
            "events": len(self._buffer),
            "first_seq": self._buffer[0].seq,
            "last_seq": self._buffer[-1].seq,
            "bytes": len(data),
            "offset": self._offset,
        })
        self._offset += len(data)
        self._buffer = []

    def manifest(self) -> Dict[str, Any]:
        """The manifest document (chunk index + stream totals)."""
        return {
            "schema": STREAM_SCHEMA_VERSION,
            "chunk_events": self.chunk_events,
            "codec": "gzip" if self.compress else "jsonl",
            "events": self.emitted,
            "dropped": self.dropped,
            "bytes": self._offset,
            "chunks": list(self._chunks),
            "meta": dict(self.meta),
        }

    def close(self) -> Dict[str, Any]:
        """Flush the final partial chunk and write ``manifest.json``."""
        if not self.closed:
            self._flush_chunk()
            self.closed = True
            doc = self.manifest()
            text = json.dumps(doc, indent=2, sort_keys=True) + "\n"
            with open(os.path.join(self.directory, MANIFEST_NAME),
                      "w") as f:
                f.write(text)
        return self.manifest()

    def __enter__(self) -> "StreamingTraceSink":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __len__(self) -> int:
        return self.emitted

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"StreamingTraceSink({self.directory!r}, "
                f"chunk_events={self.chunk_events}, "
                f"emitted={self.emitted}, chunks={len(self._chunks)})")


# ---------------------------------------------------------------------------
# Reading a persisted stream back
# ---------------------------------------------------------------------------

def _read_chunk_text(path: str) -> str:
    """One chunk file's JSONL text, plain or gzipped (by extension)."""
    if path.endswith(".gz"):
        with gzip.open(path, "rt", encoding="utf-8") as f:
            return f.read()
    with open(path) as f:
        return f.read()


def read_manifest(directory: Union[str, os.PathLike]) -> Dict[str, Any]:
    """Load and validate a stream directory's ``manifest.json``."""
    path = os.path.join(os.fspath(directory), MANIFEST_NAME)
    with open(path) as f:
        doc = json.load(f)
    schema = doc.get("schema")
    if schema != STREAM_SCHEMA_VERSION:
        raise ValueError(
            f"unsupported trace stream schema {schema!r} "
            f"(this build reads {STREAM_SCHEMA_VERSION})")
    return doc


def iter_stream_events(directory: Union[str, os.PathLike], *,
                       start_seq: int = 0) -> Iterator[TraceEvent]:
    """Lazily yield every event of a persisted stream, oldest first.

    Reads one chunk at a time, so arbitrarily long streams replay in
    bounded memory.  Raises ``ValueError`` if a chunk's event count
    disagrees with the manifest (truncation/corruption check).

    ``start_seq`` seeks: only events with ``seq >= start_seq`` are
    yielded, and chunks whose manifest ``last_seq`` falls entirely
    before the seek point are skipped without ever being opened — the
    manifest's per-chunk seq ranges make the seek O(chunks skipped)
    in manifest entries, not O(events skipped) in file reads.
    """
    directory = os.fspath(directory)
    manifest = read_manifest(directory)
    for entry in manifest["chunks"]:
        if entry["last_seq"] < start_seq:
            continue  # whole chunk predates the seek point: never opened
        events = events_from_jsonl(
            _read_chunk_text(os.path.join(directory, entry["file"])))
        if len(events) != entry["events"]:
            raise ValueError(
                f"chunk {entry['file']} holds {len(events)} events, "
                f"manifest says {entry['events']}")
        if entry["first_seq"] >= start_seq:
            yield from events
        else:  # boundary chunk: drop the prefix before the seek point
            yield from (ev for ev in events if ev.seq >= start_seq)


def read_stream_events(directory: Union[str, os.PathLike]
                       ) -> List[TraceEvent]:
    """The whole persisted stream as a list (small streams/tests)."""
    return list(iter_stream_events(directory))


def load_events(path: Union[str, os.PathLike]) -> List[TraceEvent]:
    """Events from either stream layout: a chunked stream directory
    (``manifest.json`` present) or a flat ``.jsonl`` event file."""
    path = os.fspath(path)
    if os.path.isdir(path):
        return read_stream_events(path)
    with open(path) as f:
        return events_from_jsonl(f.read())


def stream_event_dicts(sink: StreamingTraceSink,
                       dicts: Iterable[Dict[str, Any]]) -> None:
    """Feed serialized event dicts (e.g. a ``pipetrace`` task result's
    ``events`` list) through ``sink``, re-stamping sequence numbers in
    arrival order.  This is the host-side bridge that persists worker-
    produced streams: the engine returns results in payload order, so
    serial and ``workers=N`` runs write byte-identical chunks."""
    for d in dicts:
        sink.emit(event_from_dict(d))


# ---------------------------------------------------------------------------
# The public capture API
# ---------------------------------------------------------------------------

TraceTarget = Union[None, str, os.PathLike, TraceSink, StreamingTraceSink]


@contextlib.contextmanager
def trace(target: TraceTarget = None, *,
          chunk_events: int = DEFAULT_CHUNK_EVENTS,
          meta: Optional[Dict[str, Any]] = None,
          compress: bool = False):
    """Context manager yielding the right sink for ``target``.

    - ``None`` — an unbounded in-memory :class:`TraceSink` (read
      ``sink.events()`` / ``result.events`` afterwards);
    - a directory path — a :class:`StreamingTraceSink` writing chunked
      JSONL + manifest there (closed on exit; ``compress=True`` gzips
      the chunks);
    - a ``*.jsonl`` path — in-memory capture, written as one flat
      sorted-key JSONL file on exit;
    - an existing sink — passed through (a ``StreamingTraceSink`` is
      closed on exit so callers can't forget the manifest).

    This is the supported way to wire tracing up::

        from repro.observe import trace

        with trace("run_trace/") as sink:
            repro.run(("specint_like", 1), "M6", trace_to=sink)

    (or just ``repro.run(..., trace_to="run_trace/")``, which wraps
    this).  Handing a sink straight to ``GenerationSimulator`` remains
    supported but deprecated.
    """
    if target is None:
        yield TraceSink(capacity=None)
        return
    if isinstance(target, StreamingTraceSink):
        try:
            yield target
        finally:
            target.close()
        return
    if isinstance(target, TraceSink):
        yield target
        return
    path = os.fspath(target)
    if path.endswith(".jsonl"):
        sink = TraceSink(capacity=None)
        try:
            yield sink
        finally:
            parent = os.path.dirname(path)
            if parent:
                os.makedirs(parent, exist_ok=True)
            with open(path, "w") as f:
                text = events_to_jsonl(sink.events())
                f.write(text + "\n" if text else text)
        return
    streaming = StreamingTraceSink(path, chunk_events=chunk_events,
                                   meta=meta, compress=compress)
    try:
        yield streaming
    finally:
        streaming.close()
