"""The flight recorder: a bounded ring-buffer trace sink.

A :class:`TraceSink` is handed to :class:`~repro.core.simulator
.GenerationSimulator` (``trace_sink=``) and threaded into the
scoreboard, branch unit, uop-cache controller and memory hierarchy.
Each producer holds the sink (or ``None``) and guards every emission
with a single ``is not None`` check, so the disabled mode — the default
— costs one predictable branch per instrumented site and allocates
nothing.

The buffer is bounded (``capacity`` events, default
:data:`DEFAULT_CAPACITY`): once full, the oldest events are overwritten
flight-recorder style, and :attr:`TraceSink.dropped` reports how many
fell off the front.  Emission order is preserved; ``events()`` returns
the retained window oldest-first.  ``capacity=None`` disables the bound
entirely — every event is retained (the capture mode the streaming
layer and ``repro tracediff`` build on); traces longer than memory
allows should go through
:class:`~repro.observe.stream.StreamingTraceSink` instead.

Determinism: the sink records only values the simulation already
computed — cycle stamps, PCs, predictor outcomes — never wall-clock or
id()-derived data, so for a fixed seed the event stream is byte-
identical (via :func:`~repro.observe.events.events_to_jsonl`) whether
the simulation ran serially or inside a worker process.
"""

from __future__ import annotations

from typing import List, Optional

from .events import TraceEvent

#: Default flight-recorder depth, in events.  A 12k-instruction slice
#: emits roughly 1.5 events per instruction, so the default retains a
#: full default CLI run with headroom.
DEFAULT_CAPACITY = 65536


class TraceSink:
    """Bounded, overwrite-oldest event buffer (unbounded if capacity is
    ``None``)."""

    __slots__ = ("capacity", "emitted", "_buffer", "_head")

    def __init__(self,
                 capacity: Optional[int] = DEFAULT_CAPACITY) -> None:
        if capacity is not None and capacity <= 0:
            raise ValueError("trace sink capacity must be positive")
        self.capacity = int(capacity) if capacity is not None else None
        #: Total events ever emitted (retained + dropped).
        self.emitted = 0
        self._buffer: List[TraceEvent] = []
        self._head = 0

    @property
    def dropped(self) -> int:
        """Events overwritten by newer ones (flight-recorder loss)."""
        if self.capacity is None:
            return 0
        return max(0, self.emitted - self.capacity)

    def emit(self, event: TraceEvent) -> None:
        """Stamp ``event`` with the next sequence number and retain it."""
        event.seq = self.emitted
        self.emitted += 1
        if self.capacity is None or len(self._buffer) < self.capacity:
            self._buffer.append(event)
        else:
            self._buffer[self._head] = event
            self._head = (self._head + 1) % self.capacity

    def events(self) -> List[TraceEvent]:
        """The retained window, oldest first."""
        return self._buffer[self._head:] + self._buffer[:self._head]

    def clear(self) -> None:
        """Forget everything (sequence numbering restarts at 0)."""
        self.emitted = 0
        self._buffer = []
        self._head = 0

    def __len__(self) -> int:
        return len(self._buffer)

    # -- checkpointing (state_dict protocol) --------------------------------
    # Only the sequence counter is state: a restored sink starts with an
    # empty buffer but continues numbering where the saved run stopped,
    # so the pre-checkpoint stream concatenated with the post-restore
    # stream is byte-identical to an uninterrupted run's stream.

    def state_dict(self) -> dict[str, object]:
        return {"emitted": self.emitted}

    def load_state_dict(self, state: dict[str, object]) -> None:
        self.emitted = int(state["emitted"])
        self._buffer = []
        self._head = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"TraceSink(capacity={self.capacity}, "
                f"emitted={self.emitted}, dropped={self.dropped})")


def maybe_sink(enabled: bool,
               capacity: int = DEFAULT_CAPACITY) -> Optional[TraceSink]:
    """``TraceSink(capacity)`` when ``enabled``, else ``None`` — the
    shape producers expect (``None`` = tracing off, zero cost)."""
    return TraceSink(capacity) if enabled else None
