"""Trace divergence analysis: where do two generations part ways?

Two simulations of the *same* seeded workload (``family:seed:length``)
on different generations retire the same micro-ops in the same order —
the trace is the program.  What differs is behaviour: which branches
mispredict, which level serves each access, what the uop-cache mode
machine does, and where the cycles go.  This module aligns two event
streams along that shared skeleton and reports exactly where they
diverge:

- :class:`~repro.observe.events.InstEvent` pairs align by trace
  ``index`` and are compared on their CPI-stack stall bucket;
- :class:`~repro.observe.events.BranchEvent` pairs align by branch
  ordinal (the i-th resolved branch is the same static branch in both
  runs) and are compared on mispredict, predicted direction/target and
  predicting unit;
- :class:`~repro.observe.events.MemEvent` pairs align by access ordinal
  and are compared on serving level, TLB level, and prefetch touch;
- :class:`~repro.observe.events.UocModeEvent` sequences are compared as
  mode transitions (a generation without a UOC simply has none).

Timing fields (cycle stamps, latencies, bubbles) are deliberately *not*
divergence classes — they differ everywhere between generations, which
is the measurement, not the anomaly.  The divergence classes isolate
behavioural deltas, and ``first`` pinpoints the earliest one in
retire/emission order — the paper's generation-over-generation CPI
stacks (Figures 9/16/17), localized to a single event.

Everything is a pure function of the two event lists: same streams,
same diff, byte for byte.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from .events import (BranchEvent, InstEvent, MemEvent, PrefetchEvent,
                     TraceEvent, UocModeEvent)

#: Every divergence class the differ can report, in the priority order
#: used to break exact seq ties in ``first``.
DIVERGENCE_CLASSES: Tuple[str, ...] = (
    "stream.structure",    # the two streams are not the same workload
    "branch.mispredict",   # one generation mispredicts, the other not
    "branch.direction",    # different predicted direction
    "branch.target",       # different predicted target
    "branch.unit",         # different predictor component drove it
    "mem.level",           # different serving level (miss vs hit, ...)
    "mem.tlb",             # different TLB translation level
    "mem.prefetch_touch",  # prefetch covered the line in only one run
    "uoc.mode",            # different uop-cache mode transition
    "uoc.length",          # different number of UOC transitions
    "inst.stall",          # different CPI-stack stall attribution
    "inst.length",         # different number of instruction events
)

_CLASS_RANK = {name: i for i, name in enumerate(DIVERGENCE_CLASSES)}


@dataclass(frozen=True)
class Divergence:
    """One aligned event pair that disagrees."""

    #: Divergence class (one of :data:`DIVERGENCE_CLASSES`).
    kind: str
    #: Sequence number of the event in stream A (ordering anchor).
    seq: int
    #: Trace index of the owning/next retired micro-op (-1 if unknown).
    instruction: int
    pc: int
    #: The disagreeing values, one per stream.
    a: Any
    b: Any

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "seq": self.seq,
                "instruction": self.instruction, "pc": self.pc,
                "a": self.a, "b": self.b}


@dataclass
class TraceDiff:
    """The full divergence report for one stream pair."""

    a_label: str
    b_label: str
    workload: str
    #: Earliest divergence in stream-A emission order (None: streams
    #: agree on every compared field).
    first: Optional[Divergence]
    #: Divergence count per class, over the whole alignment.
    counts: Dict[str, int]
    #: Aligned pairs per event family.
    compared: Dict[str, int]
    a_events: int
    b_events: int

    @property
    def diverged(self) -> bool:
        return self.first is not None

    @property
    def total_divergences(self) -> int:
        return sum(count for _, count in sorted(self.counts.items()))

    def to_dict(self) -> Dict[str, Any]:
        return {
            "a": self.a_label,
            "b": self.b_label,
            "workload": self.workload,
            "a_events": self.a_events,
            "b_events": self.b_events,
            "compared": dict(self.compared),
            "counts": dict(self.counts),
            "first": self.first.to_dict() if self.first else None,
        }


def _partition(events: Sequence[TraceEvent]):
    insts: List[InstEvent] = []
    branches: List[BranchEvent] = []
    mems: List[MemEvent] = []
    uocs: List[UocModeEvent] = []
    prefetches = 0
    for e in events:
        if isinstance(e, InstEvent):
            insts.append(e)
        elif isinstance(e, BranchEvent):
            branches.append(e)
        elif isinstance(e, MemEvent):
            mems.append(e)
        elif isinstance(e, UocModeEvent):
            uocs.append(e)
        elif isinstance(e, PrefetchEvent):
            prefetches += 1
    return insts, branches, mems, uocs, prefetches


def _instruction_anchors(events: Sequence[TraceEvent]) -> Dict[int, int]:
    """Map every stream-A seq to the trace index of the retired
    micro-op it belongs to.  Producers emit an instruction's branch/mem
    events before its :class:`InstEvent`, so the anchor of any event is
    the index of the next instruction event at or after it."""
    anchors: Dict[int, int] = {}
    pending: List[int] = []
    for e in events:
        pending.append(e.seq)
        if isinstance(e, InstEvent):
            for seq in pending:
                anchors[seq] = e.index
            pending = []
    for seq in pending:  # trailing non-inst events keep the last index
        anchors[seq] = -1
    return anchors


def diff_event_streams(a_events: Sequence[TraceEvent],
                       b_events: Sequence[TraceEvent], *,
                       a_label: str = "A", b_label: str = "B",
                       workload: str = "") -> TraceDiff:
    """Align two same-workload event streams and report divergences."""
    a_inst, a_br, a_mem, a_uoc, _ = _partition(a_events)
    b_inst, b_br, b_mem, b_uoc, _ = _partition(b_events)
    anchors = _instruction_anchors(a_events)

    divergences: List[Divergence] = []
    counts: Dict[str, int] = {}

    def add(kind: str, seq: int, pc: int, a: Any, b: Any,
            instruction: Optional[int] = None) -> None:
        counts[kind] = counts.get(kind, 0) + 1
        divergences.append(Divergence(
            kind=kind, seq=seq,
            instruction=(anchors.get(seq, -1)
                         if instruction is None else instruction),
            pc=pc, a=a, b=b))

    structural = False

    # -- instruction lifecycle: stall attribution ------------------------
    for a, b in zip(a_inst, b_inst):
        if (a.index, a.pc, a.kind) != (b.index, b.pc, b.kind):
            add("stream.structure", a.seq, a.pc,
                (a.index, a.pc, a.kind), (b.index, b.pc, b.kind))
            structural = True
            break
        if a.stall != b.stall:
            add("inst.stall", a.seq, a.pc, a.stall, b.stall)
    if not structural and len(a_inst) != len(b_inst):
        tail_seq = a_inst[-1].seq if a_inst else 0
        add("inst.length", tail_seq, 0, len(a_inst), len(b_inst))

    # -- branches --------------------------------------------------------
    if not structural:
        for a, b in zip(a_br, b_br):
            if (a.pc, a.actual_taken, a.actual_target) != \
                    (b.pc, b.actual_taken, b.actual_target):
                add("stream.structure", a.seq, a.pc,
                    (a.pc, a.actual_taken), (b.pc, b.actual_taken))
                structural = True
                break
            if a.mispredicted != b.mispredicted:
                add("branch.mispredict", a.seq, a.pc,
                    a.mispredicted, b.mispredicted)
            if a.predicted_taken != b.predicted_taken:
                add("branch.direction", a.seq, a.pc,
                    a.predicted_taken, b.predicted_taken)
            if a.predicted_target != b.predicted_target:
                add("branch.target", a.seq, a.pc,
                    a.predicted_target, b.predicted_target)
            if a.unit != b.unit:
                add("branch.unit", a.seq, a.pc, a.unit, b.unit)

    # -- memory accesses -------------------------------------------------
    if not structural:
        for a, b in zip(a_mem, b_mem):
            if (a.pc, a.addr, a.store) != (b.pc, b.addr, b.store):
                add("stream.structure", a.seq, a.pc,
                    (a.pc, a.addr, a.store), (b.pc, b.addr, b.store))
                structural = True
                break
            if a.level != b.level:
                add("mem.level", a.seq, a.pc, a.level, b.level)
            if a.tlb_level != b.tlb_level:
                add("mem.tlb", a.seq, a.pc, a.tlb_level, b.tlb_level)
            if a.prefetch_touch != b.prefetch_touch:
                add("mem.prefetch_touch", a.seq, a.pc,
                    a.prefetch_touch, b.prefetch_touch)

    # -- uop-cache mode machine ------------------------------------------
    if not structural:
        for a, b in zip(a_uoc, b_uoc):
            if (a.from_mode, a.to_mode) != (b.from_mode, b.to_mode):
                add("uoc.mode", a.seq, a.block_pc,
                    f"{a.from_mode}->{a.to_mode}",
                    f"{b.from_mode}->{b.to_mode}")
        if len(a_uoc) != len(b_uoc):
            extra = a_uoc[min(len(b_uoc), len(a_uoc) - 1)] if a_uoc \
                else None
            add("uoc.length",
                extra.seq if extra is not None else 0,
                extra.block_pc if extra is not None else 0,
                len(a_uoc), len(b_uoc))

    first: Optional[Divergence] = None
    if divergences:
        first = min(divergences,
                    key=lambda d: (d.seq, _CLASS_RANK[d.kind]))

    return TraceDiff(
        a_label=a_label,
        b_label=b_label,
        workload=workload,
        first=first,
        counts=dict(sorted(counts.items())),
        compared={
            "inst": min(len(a_inst), len(b_inst)),
            "branch": min(len(a_br), len(b_br)),
            "mem": min(len(a_mem), len(b_mem)),
            "uoc": min(len(a_uoc), len(b_uoc)),
        },
        a_events=len(a_events),
        b_events=len(b_events),
    )


def render_tracediff(diff: TraceDiff) -> str:
    """Human rendering of a :class:`TraceDiff` (pure, deterministic)."""
    head = f"tracediff {diff.a_label} vs {diff.b_label}"
    if diff.workload:
        head += f" on {diff.workload}"
    lines = [
        head,
        f"  events: {diff.a_label}={diff.a_events}  "
        f"{diff.b_label}={diff.b_events}",
        "  aligned: " + "  ".join(
            f"{fam}={n}" for fam, n in diff.compared.items()),
    ]
    if diff.first is None:
        lines.append("  no divergence: the streams agree on every "
                     "compared field")
        return "\n".join(lines)
    f = diff.first
    where = (f"instruction {f.instruction}" if f.instruction >= 0
             else "stream tail")
    lines.append(
        f"  first divergence: {f.kind} at {where} "
        f"(pc {f.pc:#x}, seq {f.seq}): "
        f"{diff.a_label}={f.a!r}  {diff.b_label}={f.b!r}")
    lines.append(f"  divergence classes ({diff.total_divergences} "
                 f"total):")
    width = max(len(k) for k in diff.counts)
    for kind, count in diff.counts.items():
        lines.append(f"    {kind:<{width}s}  {count}")
    return "\n".join(lines)
