"""Chrome trace-event JSON export (Perfetto / chrome://tracing).

Converts a pipeline event stream into the Trace Event Format's JSON
object form: one *track* (thread) per pipeline stage carrying complete
(``"ph": "X"``) slices for each micro-op's time in that stage, instant
events for branch resolutions and uop-cache mode transitions, and async
begin/end pairs (``"ph": "b"``/``"e"``) for in-flight memory operations
so overlapping misses render as overlapping slices.

Passing the run's :class:`~repro.metrics.WindowSample` series via
``windows=`` additionally emits *counter tracks* (``"ph": "C"``): one
sample per window boundary for per-window IPC, MPKI and the stall-
bucket cycle split, rendered by Perfetto as stepped counter plots above
the slice tracks.

Cycles map 1:1 onto the format's microsecond timestamps — load the file
in https://ui.perfetto.dev or chrome://tracing and read "us" as
"cycles".  Output is deterministic for a given event stream:
:func:`chrome_trace_json` serializes with sorted keys and events are
ordered by sequence number.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional, Sequence

from ..metrics.windows import WindowSample
from .events import (BranchEvent, InstEvent, MemEvent, PrefetchEvent,
                     TraceEvent, UocModeEvent)

#: Track (thread) ids, one per pipeline stage / event family.
TRACKS = (
    (0, "fetch"),
    (1, "dispatch"),
    (2, "execute"),
    (3, "branch"),
    (4, "memory"),
    (5, "prefetch"),
    (6, "uop-cache"),
)

_PID = 0


def _meta(name: str, tid: int, label: str) -> Dict[str, Any]:
    return {"ph": "M", "name": name, "pid": _PID, "tid": tid,
            "ts": 0, "args": {"name": label}}


def _slice(name: str, tid: int, start: float, end: float,
           args: Dict[str, Any]) -> Dict[str, Any]:
    return {"ph": "X", "name": name, "pid": _PID, "tid": tid,
            "ts": start, "dur": max(0.0, end - start), "cat": "pipeline",
            "args": args}


def _counter(name: str, ts: float, values: Dict[str, Any]
             ) -> Dict[str, Any]:
    return {"ph": "C", "name": name, "pid": _PID, "tid": 0,
            "ts": ts, "cat": "window", "args": values}


def window_counter_events(windows: Sequence[WindowSample]
                          ) -> List[Dict[str, Any]]:
    """Per-window counter samples (``"ph": "C"``) for the IPC/MPKI and
    stall-bucket tracks.  Each window contributes one sample stamped at
    the simulated cycle its interval ended (cumulative ``core.cycles``
    deltas), so the counter plot lines up with the slice tracks."""
    out: List[Dict[str, Any]] = []
    cum_cycles = 0.0
    for w in windows:
        cum_cycles += float(w.values.get("core.cycles", 0))
        out.append(_counter("IPC (window)", cum_cycles,
                            {"ipc": w.ipc}))
        out.append(_counter("MPKI (window)", cum_cycles,
                            {"mpki": w.mpki}))
        out.append(_counter("stall cycles (window)", cum_cycles,
                            dict(sorted(w.stall_cycles.items()))))
    return out


def chrome_trace(events: Iterable[TraceEvent], *, generation: str = "",
                 trace_name: str = "",
                 windows: Optional[Sequence[WindowSample]] = None
                 ) -> Dict[str, Any]:
    """Build the Trace Event Format JSON object for an event stream.

    ``windows`` (a run's :class:`WindowSample` series) adds per-window
    IPC/MPKI/stall counter tracks next to the slice tracks.
    """
    out: List[Dict[str, Any]] = [
        _meta("process_name", 0,
              f"repro {generation or 'core'}"
              + (f" / {trace_name}" if trace_name else "")),
    ]
    for tid, label in TRACKS:
        out.append(_meta("thread_name", tid, label))

    for e in events:
        if isinstance(e, InstEvent):
            label = f"{e.kind}@{e.pc:#x}"
            args = {"pc": f"{e.pc:#x}", "kind": e.kind, "index": e.index,
                    "stall": e.stall, "stall_cycles": e.stall_cycles}
            out.append(_slice(label, 0, e.fetch, e.dispatch, args))
            out.append(_slice(label, 1, e.dispatch, e.issue, args))
            out.append(_slice(label, 2, e.issue, e.complete, args))
        elif isinstance(e, BranchEvent):
            out.append({
                "ph": "i", "name": ("mispredict" if e.mispredicted
                                    else "branch"),
                "pid": _PID, "tid": 3, "ts": e.cycle, "s": "t",
                "cat": "branch",
                "args": {"pc": f"{e.pc:#x}", "kind": e.kind,
                         "unit": e.unit,
                         "predicted_taken": e.predicted_taken,
                         "actual_taken": e.actual_taken,
                         "bubbles": e.bubbles},
            })
        elif isinstance(e, MemEvent):
            # Async begin/end pair: in-flight ops overlap visibly.
            common = {"pid": _PID, "tid": 4, "cat": "mem",
                      "id": e.seq, "name": f"{e.level}@{e.addr:#x}"}
            out.append(dict(common, ph="b", ts=e.cycle,
                            args={"pc": f"{e.pc:#x}", "level": e.level,
                                  "latency": e.latency,
                                  "tlb": e.tlb_level,
                                  "store": e.store,
                                  "prefetch_touch": e.prefetch_touch}))
            out.append(dict(common, ph="e", ts=e.cycle + e.latency,
                            args={}))
        elif isinstance(e, PrefetchEvent):
            out.append({
                "ph": "i", "name": f"prefetch:{e.engine}",
                "pid": _PID, "tid": 5, "ts": e.cycle, "s": "t",
                "cat": "prefetch",
                "args": {"addr": f"{e.addr:#x}",
                         "target_level": e.target_level,
                         "from_dram": e.from_dram},
            })
        elif isinstance(e, UocModeEvent):
            out.append({
                "ph": "i", "name": f"{e.from_mode}->{e.to_mode}",
                "pid": _PID, "tid": 6, "ts": e.cycle, "s": "t",
                "cat": "uoc",
                "args": {"block_pc": f"{e.block_pc:#x}"},
            })

    if windows:
        out.extend(window_counter_events(windows))

    return {
        "traceEvents": out,
        "displayTimeUnit": "ms",
        "otherData": {
            "generation": generation,
            "trace": trace_name,
            "unit": "1 us == 1 simulated cycle",
        },
    }


def chrome_trace_json(events: Iterable[TraceEvent], *,
                      generation: str = "", trace_name: str = "",
                      windows: Optional[Sequence[WindowSample]] = None,
                      indent: int = 0) -> str:
    """Deterministic JSON text of :func:`chrome_trace` (sorted keys)."""
    doc = chrome_trace(events, generation=generation,
                       trace_name=trace_name, windows=windows)
    return json.dumps(doc, sort_keys=True,
                      indent=indent if indent > 0 else None)
