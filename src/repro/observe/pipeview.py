"""gem5-O3-pipeview-style ASCII pipeline timeline.

Renders the :class:`~repro.observe.events.InstEvent` stream as one row
per micro-op: a fixed-width timeline band where each stage is marked at
its (scaled) cycle column — ``f`` fetch, ``d`` dispatch, ``i`` issue,
``c`` complete — with fill characters between stages (``=`` in fetch,
``-`` waiting to issue, ``*`` executing), followed by the numeric cycle
stamps and the stall-attribution bucket when the micro-op lost cycles.

The look follows gem5's ``util/o3-pipeview.py`` output for its O3CPU
trace ("Anatomy of the gem5 Simulator"); the data model is this repo's
scoreboard rather than gem5's fetch/decode/rename/dispatch chain, so
the stage letters map onto the stages the dataflow model actually has.

Everything is a pure function of the event list: same events, same
bytes.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from .events import InstEvent, TraceEvent

#: (attribute, marker) per stage, in pipeline order.
STAGE_MARKS = (
    ("fetch", "f"),
    ("dispatch", "d"),
    ("issue", "i"),
    ("complete", "c"),
)

#: Fill characters for the span *after* each stage mark.
_FILLS = {"f": "=", "d": "-", "i": "*"}

DEFAULT_TIMELINE_WIDTH = 48


def _select(events: Iterable[TraceEvent], start: int,
            count: Optional[int]) -> List[InstEvent]:
    insts = [e for e in events if isinstance(e, InstEvent)]
    insts = [e for e in insts if e.index >= start]
    if count is not None:
        insts = insts[:count]
    return insts


def render_pipeview(events: Sequence[TraceEvent], *, start: int = 0,
                    count: Optional[int] = 40,
                    width: int = DEFAULT_TIMELINE_WIDTH) -> str:
    """Render the per-instruction stage timeline.

    ``start``/``count`` select by trace index (retire order);
    ``width`` is the timeline band width in columns.  Cycle-to-column
    scaling is computed over the selected rows so short windows get
    cycle-per-column resolution and long ones compress.
    """
    insts = _select(events, start, count)
    if not insts:
        return "(no instruction events in the selected window)"

    base = min(e.fetch for e in insts)
    span = max(max(e.complete for e in insts) - base, 1.0)
    scale = (width - 1) / span

    def col(cycle: float) -> int:
        return max(0, min(width - 1, int((cycle - base) * scale)))

    lines = [
        f"cycles {base:g}..{base + span:g}  "
        f"({span / (width - 1):.2f} cycles/col; "
        f"f=fetch d=dispatch i=issue c=complete)",
        f"{'idx':>6s} {'pc':>10s} {'kind':<12s} |{'timeline':<{width}s}| "
        f"{'fetch':>9s} {'issue':>9s} {'compl':>9s}  stall",
    ]
    for e in insts:
        band = [" "] * width
        marks = [(col(getattr(e, attr)), mark)
                 for attr, mark in STAGE_MARKS]
        # Fill between consecutive stage columns, then lay the marks on
        # top so a compressed row still shows every stage letter.
        for (c0, mark), (c1, _nxt) in zip(marks, marks[1:]):
            fill = _FILLS[mark]
            for c in range(c0 + 1, c1):
                band[c] = fill
        for c, mark in marks:
            band[c] = mark
        note = ""
        if e.stall != "base" or e.stall_cycles:
            note = f"{e.stall}(+{e.stall_cycles:g})"
        lines.append(
            f"{e.index:6d} {e.pc:#10x} {e.kind:<12s} |{''.join(band)}| "
            f"{e.fetch:9.1f} {e.issue:9.1f} {e.complete:9.1f}  {note}")
    return "\n".join(lines)


def render_event_log(events: Sequence[TraceEvent], *,
                     limit: Optional[int] = None) -> str:
    """Flat one-line-per-event rendering (every event family)."""
    lines: List[str] = []
    for e in events if limit is None else list(events)[:limit]:
        d = e.to_dict()
        kind = d.pop("event")
        seq = d.pop("seq")
        cycle = d.pop("cycle")
        detail = " ".join(f"{k}={d[k]}" for k in sorted(d))
        lines.append(f"{seq:8d} @{cycle:10.1f} {kind:<9s} {detail}")
    return "\n".join(lines)
