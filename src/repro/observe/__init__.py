"""repro.observe — pipeline event tracing and engine self-profiling.

The observability layer: an opt-in, bounded flight recorder
(:class:`TraceSink`) that the scoreboard, branch unit, uop-cache
controller and memory hierarchy emit lifecycle events into; chunked
persistence past the ring (:class:`StreamingTraceSink` and the
:func:`trace` capture API); generation-over-generation divergence
analysis (:func:`diff_event_streams`, the ``python -m repro
tracediff`` subcommand); exporters for Chrome/Perfetto
(:func:`chrome_trace_json`, with per-window counter tracks) and a
gem5-pipeview-style ASCII timeline (:func:`render_pipeview`, the
``python -m repro pipeview`` subcommand); and the engine
self-profiling report types behind ``python -m repro population
--profile``.

Contracts (``docs/observability.md``):

- default off, ``None``-guarded at every emission site — with tracing
  disabled, simulated results are bit-identical to an uninstrumented
  build and wall-clock overhead stays within 2%
  (``benchmarks/test_observe_overhead.py``);
- tracing never perturbs simulated timing — events only *read* values
  the model computed anyway;
- deterministic — for a fixed seed the event stream is byte-identical
  (:func:`events_to_jsonl`) across serial and worker execution.
"""

from .chrome import (  # noqa: F401
    chrome_trace,
    chrome_trace_json,
    window_counter_events,
)
from .events import (  # noqa: F401
    STALL_BUCKETS,
    BranchEvent,
    InstEvent,
    MemEvent,
    PrefetchEvent,
    TraceEvent,
    UocModeEvent,
    event_from_dict,
    events_from_jsonl,
    events_to_jsonl,
)
from .ledger import (  # noqa: F401
    LEDGER_SCHEMA_VERSION,
    append_record,
    compare_records,
    find_record,
    gc_ledger,
    ledger_enabled,
    ledger_path,
    read_ledger,
    record_id,
)
from .pipeview import render_event_log, render_pipeview  # noqa: F401
from .profile import (  # noqa: F401
    PHASES,
    TaskTiming,
    describe_profile,
    kind_hit_rates,
    slowest_tasks,
)
from .sink import DEFAULT_CAPACITY, TraceSink, maybe_sink  # noqa: F401
from .stream import (  # noqa: F401
    DEFAULT_CHUNK_EVENTS,
    MANIFEST_NAME,
    STREAM_SCHEMA_VERSION,
    StreamingTraceSink,
    iter_stream_events,
    load_events,
    read_manifest,
    read_stream_events,
    stream_event_dicts,
    trace,
)
from .telemetry import (  # noqa: F401
    TELEMETRY_SCHEMA_VERSION,
    Heartbeat,
    TelemetryConfig,
    TelemetryMonitor,
    start_watchdog,
    write_status_file,
)
from .tracediff import (  # noqa: F401
    DIVERGENCE_CLASSES,
    Divergence,
    TraceDiff,
    diff_event_streams,
    render_tracediff,
)

__all__ = [
    "STALL_BUCKETS",
    "TraceEvent",
    "InstEvent",
    "BranchEvent",
    "MemEvent",
    "PrefetchEvent",
    "UocModeEvent",
    "event_from_dict",
    "events_to_jsonl",
    "events_from_jsonl",
    "TraceSink",
    "DEFAULT_CAPACITY",
    "maybe_sink",
    "StreamingTraceSink",
    "DEFAULT_CHUNK_EVENTS",
    "MANIFEST_NAME",
    "STREAM_SCHEMA_VERSION",
    "iter_stream_events",
    "read_stream_events",
    "read_manifest",
    "load_events",
    "stream_event_dicts",
    "trace",
    "DIVERGENCE_CLASSES",
    "Divergence",
    "TraceDiff",
    "diff_event_streams",
    "render_tracediff",
    "chrome_trace",
    "chrome_trace_json",
    "window_counter_events",
    "render_pipeview",
    "render_event_log",
    "PHASES",
    "TaskTiming",
    "describe_profile",
    "kind_hit_rates",
    "slowest_tasks",
    "LEDGER_SCHEMA_VERSION",
    "ledger_enabled",
    "ledger_path",
    "append_record",
    "read_ledger",
    "find_record",
    "gc_ledger",
    "compare_records",
    "record_id",
    "TELEMETRY_SCHEMA_VERSION",
    "TelemetryConfig",
    "TelemetryMonitor",
    "Heartbeat",
    "start_watchdog",
    "write_status_file",
]
