"""Set-associative cache with optional sectored tags and rich metadata.

The building block for L1D/L1I/L2/L3.  The L2's tags are "sectored at a
128B granule for a default data line size of 64B", which "reduces the tag
area and allows a lower latency for tag lookups" (Section VIII-B) — here a
sector entry carries a per-64B-line valid mask, so the Buddy prefetcher can
fill the neighbour line with zero pollution (the buddy slot would stay
invalid otherwise).

Lines carry the coordinated-management metadata of Section VIII-A:
prefetched/accessed bits (adaptive prefetcher accuracy tracking) and reuse
hints passed between cache levels on castout.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple


@dataclass
class CacheLine:
    """One resident line (or sector, for sectored caches)."""

    address: int  # line/sector base address
    #: Per-64B-subline valid bits (bit 0 = low line); plain caches use 0b1.
    valid_mask: int = 0b1
    dirty: bool = False
    #: Filled by a prefetch and not yet touched by demand.
    prefetched: bool = False
    #: Touched by a demand access since fill.
    accessed: bool = False
    #: Hits observed while resident at this level (reuse tracking).
    hit_count: int = 0
    #: Came back from the L3 after a previous castout (re-allocation).
    reallocated: bool = False
    #: Replacement state for multi-state insertion: 0 = elevated (MRU),
    #: 1 = ordinary, used by the coordinated L3 policy.
    rrpv: int = 0


class SetAssocCache:
    """LRU set-associative cache over line (or sector) granules."""

    def __init__(self, size_bytes: int, ways: int, line_bytes: int = 64,
                 sector_bytes: Optional[int] = None,
                 name: str = "cache") -> None:
        if size_bytes <= 0 or ways <= 0:
            raise ValueError("size and ways must be positive")
        self.name = name
        self.line_bytes = line_bytes
        self.sector_bytes = sector_bytes or line_bytes
        if self.sector_bytes % line_bytes:
            raise ValueError("sector must be a multiple of the line size")
        self.lines_per_sector = self.sector_bytes // line_bytes
        #: Number of tag entries (sectors), preserving total data capacity.
        self.num_entries = size_bytes // self.sector_bytes
        self.ways = min(ways, self.num_entries)
        self.num_sets = max(1, self.num_entries // self.ways)
        self._sets: List["OrderedDict[int, CacheLine]"] = [
            OrderedDict() for _ in range(self.num_sets)
        ]
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.prefetch_fills = 0

    # -- address helpers ------------------------------------------------------

    def sector_base(self, addr: int) -> int:
        return addr - (addr % self.sector_bytes)

    def line_base(self, addr: int) -> int:
        return addr - (addr % self.line_bytes)

    def _set_index(self, sector: int) -> int:
        return (sector // self.sector_bytes) % self.num_sets

    def _subline_bit(self, addr: int) -> int:
        if self.lines_per_sector == 1:
            return 0b1
        off = (addr % self.sector_bytes) // self.line_bytes
        return 1 << off

    # -- operations ---------------------------------------------------------------

    def probe(self, addr: int, update_lru: bool = True,
              count: bool = True) -> Optional[CacheLine]:
        """Return the resident line covering ``addr`` or None.

        A sector tag hit with the subline invalid is a miss (the Buddy
        case: the neighbour slot exists but holds no data).
        """
        sector = self.sector_base(addr)
        s = self._sets[self._set_index(sector)]
        entry = s.get(sector)
        if entry is not None and entry.valid_mask & self._subline_bit(addr):
            if update_lru:
                s.move_to_end(sector)
            if count:
                self.hits += 1
                entry.hit_count += 1
            return entry
        if count:
            self.misses += 1
        return None

    def contains(self, addr: int) -> bool:
        return self.probe(addr, update_lru=False, count=False) is not None

    def fill(self, addr: int, dirty: bool = False, prefetched: bool = False,
             reallocated: bool = False,
             insert_lru: bool = False) -> Optional[CacheLine]:
        """Install the 64B line covering ``addr``; returns the evicted
        victim (a whole sector) or None.

        ``insert_lru`` inserts at LRU position (the "ordinary" replacement
        state of the coordinated policy); default insertion is MRU
        ("elevated").
        """
        sector = self.sector_base(addr)
        set_idx = self._set_index(sector)
        s = self._sets[set_idx]
        bit = self._subline_bit(addr)
        entry = s.get(sector)
        if entry is not None:
            entry.valid_mask |= bit
            entry.dirty = entry.dirty or dirty
            if prefetched and not entry.accessed:
                entry.prefetched = True
            s.move_to_end(sector)
            if prefetched:
                self.prefetch_fills += 1
            return None
        victim: Optional[CacheLine] = None
        if len(s) >= self.ways:
            _, victim = s.popitem(last=False)
            self.evictions += 1
        entry = CacheLine(address=sector, valid_mask=bit, dirty=dirty,
                          prefetched=prefetched, reallocated=reallocated)
        if insert_lru and s:
            # Rebuild with the new entry in LRU position.
            items = list(s.items())
            s.clear()
            s[sector] = entry
            for k, v in items:
                s[k] = v
        else:
            s[sector] = entry
        if prefetched:
            self.prefetch_fills += 1
        return victim

    def invalidate(self, addr: int) -> Optional[CacheLine]:
        """Remove (and return) the sector covering ``addr``, if resident."""
        sector = self.sector_base(addr)
        s = self._sets[self._set_index(sector)]
        return s.pop(sector, None)

    def iter_lines(self) -> Iterator[CacheLine]:
        for s in self._sets:
            yield from s.values()

    @property
    def resident_count(self) -> int:
        return sum(len(s) for s in self._sets)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    # -- checkpointing (state_dict protocol) --------------------------------

    def state_dict(self) -> dict[str, object]:
        return {
            "sets": [
                [[sector, {
                    "address": line.address,
                    "valid_mask": line.valid_mask,
                    "dirty": line.dirty,
                    "prefetched": line.prefetched,
                    "accessed": line.accessed,
                    "hit_count": line.hit_count,
                    "reallocated": line.reallocated,
                    "rrpv": line.rrpv,
                }] for sector, line in s.items()]
                for s in self._sets
            ],
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "prefetch_fills": self.prefetch_fills,
        }

    def load_state_dict(self, state: dict[str, object]) -> None:
        sets = state["sets"]
        if len(sets) != self.num_sets:
            raise ValueError(
                f"{self.name}: checkpoint has {len(sets)} sets, this "
                f"geometry {self.num_sets}")
        rebuilt: List["OrderedDict[int, CacheLine]"] = []
        for s in sets:
            out: "OrderedDict[int, CacheLine]" = OrderedDict()
            for sector, d in s:
                out[int(sector)] = CacheLine(
                    address=int(d["address"]),
                    valid_mask=int(d["valid_mask"]),
                    dirty=bool(d["dirty"]),
                    prefetched=bool(d["prefetched"]),
                    accessed=bool(d["accessed"]),
                    hit_count=int(d["hit_count"]),
                    reallocated=bool(d["reallocated"]),
                    rrpv=int(d["rrpv"]),
                )
            rebuilt.append(out)
        self._sets = rebuilt
        self.hits = int(state["hits"])
        self.misses = int(state["misses"])
        self.evictions = int(state["evictions"])
        self.prefetch_fills = int(state["prefetch_fills"])
