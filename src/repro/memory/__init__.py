"""Memory hierarchy substrate (paper Sections VII-X)."""

from .cache import CacheLine, SetAssocCache  # noqa: F401
from .coordinated import CastoutDecision, CoordinatedPolicy  # noqa: F401
from .dram import DramAccessResult, DramModel  # noqa: F401
from .hierarchy import MemoryHierarchy, MemoryStats  # noqa: F401
from .interconnect import (  # noqa: F401
    DramPathResult,
    MemoryPath,
    SnoopFilterDirectory,
)
from .mab import MissBufferPool  # noqa: F401
from .tlb import Tlb, TranslationHierarchy, TranslationResult  # noqa: F401
