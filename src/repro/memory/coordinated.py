"""Coordinated exclusive L2/L3 cache management (Section VIII-A).

The L3 is exclusive to the inner caches, so conventional L3 replacement
never sees reuse (lines swap back inward on hit).  The Exynos scheme has
the L2 track both the frequency of hits within the L2 and subsequent
re-allocation from the L3; on L2 castout those observations choose one of
three L3 insertion treatments:

- **elevated** replacement state (insert MRU) for lines with proven reuse,
- **ordinary** state (insert LRU-ish) for lines with weak evidence,
- **bypass** (no allocation) for dead or transient-stream lines.

Some fills must not be recorded as reuse — e.g. the second pass of
two-pass prefetching re-reads a line the first pass already staged, which
is mechanism traffic, not program reuse.
"""

from __future__ import annotations

from dataclasses import dataclass

from .cache import CacheLine


@dataclass
class CastoutDecision:
    allocate: bool
    elevated: bool

    @property
    def label(self) -> str:
        if not self.allocate:
            return "bypass"
        return "elevated" if self.elevated else "ordinary"


class CoordinatedPolicy:
    """Castout classifier + reuse bookkeeping."""

    #: L2 hit count at/above which a castout earns elevated insertion.
    ELEVATED_HIT_THRESHOLD = 2

    def __init__(self) -> None:
        self.elevated = 0
        self.ordinary = 0
        self.bypassed = 0

    def classify_castout(self, line: CacheLine) -> CastoutDecision:
        """Choose the L3 treatment for an L2 victim line."""
        reused = (line.hit_count >= self.ELEVATED_HIT_THRESHOLD
                  or line.reallocated)
        touched = line.accessed or line.hit_count > 0 or line.dirty
        if reused:
            self.elevated += 1
            return CastoutDecision(allocate=True, elevated=True)
        if touched:
            self.ordinary += 1
            return CastoutDecision(allocate=True, elevated=False)
        # Never touched after fill: prefetched-dead or pure streaming —
        # do not pollute the L3.
        self.bypassed += 1
        return CastoutDecision(allocate=False, elevated=False)

    def state_dict(self) -> dict[str, object]:
        return {
            "elevated": self.elevated,
            "ordinary": self.ordinary,
            "bypassed": self.bypassed,
        }

    def load_state_dict(self, state: dict[str, object]) -> None:
        self.elevated = int(state["elevated"])
        self.ordinary = int(state["ordinary"])
        self.bypassed = int(state["bypassed"])

    @staticmethod
    def mark_reallocated(line: CacheLine) -> None:
        """Tag a line swapping back inward from the L3: its next castout
        will be treated as reused (it earned a second residency)."""
        line.reallocated = True
        line.hit_count = 0

    @staticmethod
    def is_mechanism_fill(second_pass_prefetch: bool) -> bool:
        """Fills that must not count as reuse (Section VIII-A's filter),
        e.g. the second pass of two-pass prefetching."""
        return second_pass_prefetch
