"""Interconnect and DRAM-path latency features (Section IX).

The path from core to main memory crosses three voltage/frequency domains
(core, interconnect, memory controller), requiring four on-die
asynchronous crossings (two outbound, two inbound) plus several blocks of
buffering.  Three generational features shorten it:

- **Data fast path** (M4): a dedicated DRAM-to-cluster return path that
  bypasses the cache-return/interconnect queuing stages and replaces the
  two inbound crossings with one direct crossing.
- **Speculative read** (M5): latency-critical reads issue to the coherent
  interconnect in parallel with the L2/L3 tag checks; the interconnect's
  snoop-filter directory predicts whether the line is actually on-cluster
  and cancels the speculative DRAM read if so ("corrector predictor").
- **Early page activate** (M5): a sideband hint that opens the DRAM page
  ahead of the read (see :mod:`repro.memory.dram`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Set

from ..config import MemoryLatencyConfig
from .dram import DramModel


class SnoopFilterDirectory:
    """Interconnect-resident directory of lines cached on the cluster.

    The speculative-read feature "utilizes the directory lookup to further
    predict with high probability whether the requested cache line may be
    present in the bypassed lower levels of cache" (Section IX).
    """

    def __init__(self) -> None:
        self._present: Set[int] = set()
        self.lookups = 0
        self.cancels = 0

    def note_filled(self, line_addr: int) -> None:
        self._present.add(line_addr)

    def note_evicted(self, line_addr: int) -> None:
        self._present.discard(line_addr)

    def predicts_present(self, line_addr: int) -> bool:
        self.lookups += 1
        return line_addr in self._present

    # -- checkpointing (state_dict protocol) --------------------------------

    def state_dict(self) -> dict[str, object]:
        return {
            "present": sorted(self._present),
            "lookups": self.lookups,
            "cancels": self.cancels,
        }

    def load_state_dict(self, state: dict[str, object]) -> None:
        self._present = {int(a) for a in state["present"]}
        self.lookups = int(state["lookups"])
        self.cancels = int(state["cancels"])


@dataclass
class DramPathResult:
    """Latency of a full DRAM round trip, with feature attribution."""

    latency: float
    device_latency: float
    crossings: float
    queueing: float
    fast_path_used: bool = False
    speculative: bool = False
    early_activated: bool = False


class MemoryPath:
    """Composes crossing/queue/device latencies per generation features."""

    def __init__(self, cfg: MemoryLatencyConfig, dram: DramModel,
                 directory: Optional[SnoopFilterDirectory] = None) -> None:
        self.cfg = cfg
        self.dram = dram
        self.directory = directory or SnoopFilterDirectory()
        self.speculative_reads = 0
        self.speculative_cancels = 0

    def dram_round_trip(self, addr: int, latency_critical: bool = False,
                        bypassed_lookup_latency: float = 0.0
                        ) -> DramPathResult:
        """Full core-to-DRAM-to-core latency for one demand read.

        ``bypassed_lookup_latency`` is the tag-check time (e.g. the L3
        lookup) the speculative read would overlap; without the feature it
        is paid serially before the DRAM request launches.
        """
        cfg = self.cfg
        # Outbound: two crossings through the interconnect domain.
        outbound = 2 * cfg.async_crossing_latency + cfg.interconnect_queue_latency
        # Early page activate races ahead of the read.
        early = False
        if cfg.has_early_page_activate and latency_critical:
            early = self.dram.early_activate(addr)
        device = self.dram.access(addr).latency
        if early:
            device = max(self.dram.base_latency,
                         device - self.dram.page_miss_penalty)
        # Inbound: fast path replaces two crossings + queuing with one.
        fast = cfg.has_data_fast_path
        if fast:
            inbound = cfg.async_crossing_latency
        else:
            inbound = (2 * cfg.async_crossing_latency
                       + cfg.interconnect_queue_latency)
        serial_lookup = bypassed_lookup_latency
        speculative = False
        if cfg.has_speculative_read and latency_critical:
            # The request launched in parallel with the cache tag checks.
            self.speculative_reads += 1
            speculative = True
            serial_lookup = 0.0
        total = serial_lookup + outbound + device + inbound
        return DramPathResult(
            latency=total,
            device_latency=device,
            crossings=(2 * cfg.async_crossing_latency
                       + (cfg.async_crossing_latency if fast
                          else 2 * cfg.async_crossing_latency)),
            queueing=cfg.interconnect_queue_latency * (1 if fast else 2),
            fast_path_used=fast,
            speculative=speculative,
            early_activated=early,
        )

    def try_cancel_speculative(self, line_addr: int) -> bool:
        """Directory check for an in-flight speculative read: True when the
        line is on-cluster and the DRAM read is cancelled (saving bandwidth
        and power, not latency — the cache supplies the data)."""
        if self.directory.predicts_present(line_addr):
            self.speculative_cancels += 1
            self.directory.cancels += 1
            return True
        return False

    # -- checkpointing (state_dict protocol) --------------------------------

    def state_dict(self) -> dict[str, object]:
        # The directory is owned (and restored) by the hierarchy.
        return {
            "speculative_reads": self.speculative_reads,
            "speculative_cancels": self.speculative_cancels,
        }

    def load_state_dict(self, state: dict[str, object]) -> None:
        self.speculative_reads = int(state["speculative_reads"])
        self.speculative_cancels = int(state["speculative_cancels"])
