"""Outstanding-miss tracking: fill buffers vs the Memory Address Buffer.

L1D outstanding misses grew "from 8 in M1, to 12 in M3, to 32 in M4, and
40 in M6.  The significant increase in misses in M4 was due to
transitioning from a fill buffer approach to a data-less memory address
buffer (MAB) approach that held fill data only in the data cache"
(Section VII).  The structure bounds miss-level parallelism: a demand miss
arriving with every entry busy waits for the oldest to complete.  The
two-pass prefetch scheme exists precisely to keep prefetches from
occupying these entries (Section VII-B).
"""

from __future__ import annotations

from typing import List, Tuple


class MissBufferPool:
    """Bounded pool of in-flight L1 misses, each with a completion time."""

    def __init__(self, entries: int, data_less: bool = False) -> None:
        if entries < 1:
            raise ValueError("need at least one miss buffer")
        self.entries = entries
        #: MAB-style (M4+): entries hold only addresses, fill data goes
        #: straight to the data cache.  Same timing model; kept for
        #: structural fidelity and stats labelling.
        self.data_less = data_less
        self._inflight: List[Tuple[float, int]] = []  # (ready_time, addr)
        self.allocations = 0
        self.stalls = 0
        self.stall_cycles = 0.0

    def _reap(self, now: float) -> None:
        self._inflight = [e for e in self._inflight if e[0] > now]

    def available(self, now: float) -> int:
        self._reap(now)
        return self.entries - len(self._inflight)

    def allocate(self, now: float, ready: float, addr: int) -> float:
        """Allocate an entry for a miss completing at ``ready``.

        Returns the extra delay suffered when the pool was full (waiting
        for the oldest in-flight miss to complete).
        """
        self._reap(now)
        delay = 0.0
        while len(self._inflight) >= self.entries:
            oldest = min(e[0] for e in self._inflight)
            delay = max(delay, oldest - now)
            self._inflight = [e for e in self._inflight if e[0] > oldest]
        # Cap the drift one service interval out: beyond that the core's
        # own dispatch stall throttles the arrival rate (the open-loop
        # driver otherwise accumulates unbounded queueing).
        delay = min(delay, max(0.0, ready - now))
        if delay > 0:
            self.stalls += 1
            self.stall_cycles += delay
        self._inflight.append((ready + delay, addr))
        self.allocations += 1
        return delay

    @property
    def occupancy(self) -> int:
        return len(self._inflight)

    # -- checkpointing (state_dict protocol) --------------------------------

    def state_dict(self) -> dict[str, object]:
        return {
            "inflight": [[ready, addr] for ready, addr in self._inflight],
            "allocations": self.allocations,
            "stalls": self.stalls,
            "stall_cycles": self.stall_cycles,
        }

    def load_state_dict(self, state: dict[str, object]) -> None:
        self._inflight = [(float(ready), int(addr))
                          for ready, addr in state["inflight"]]
        self.allocations = int(state["allocations"])
        self.stalls = int(state["stalls"])
        self.stall_cycles = float(state["stall_cycles"])
