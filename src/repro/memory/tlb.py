"""Translation hierarchy: L1 I/D TLBs, the M3+ "level 1.5" data TLB, and
the shared L2 TLB (Table I's Translation rows).

Table I gives each TLB as total pages (#entries / #ways / #sectors); a
sectored TLB entry covers ``sectors`` contiguous pages with one tag.  The
L1.5 data TLB (M3+) provides "additional capacity at much lower latency
than the much-larger L2 TLB" (Section III).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import List, Optional

from ..config import GenerationConfig, TlbConfig

PAGE_BYTES = 4096

#: Cost of a full page table walk on a complete TLB miss, in cycles.
PAGE_WALK_LATENCY = 40.0


class Tlb:
    """One TLB level: set-associative over page (or page-sector) tags."""

    def __init__(self, cfg: TlbConfig, name: str = "tlb") -> None:
        self.cfg = cfg
        self.name = name
        self.sector_pages = cfg.sectors
        self.num_entries = cfg.entries
        self.ways = min(cfg.ways, cfg.entries)
        self.num_sets = max(1, cfg.entries // self.ways)
        self._sets: List["OrderedDict[int, bool]"] = [
            OrderedDict() for _ in range(self.num_sets)
        ]
        self.hits = 0
        self.misses = 0

    def _key(self, addr: int) -> int:
        return (addr // PAGE_BYTES) // self.sector_pages

    def _set_index(self, key: int) -> int:
        return key % self.num_sets

    def probe(self, addr: int) -> bool:
        key = self._key(addr)
        s = self._sets[self._set_index(key)]
        if key in s:
            s.move_to_end(key)
            self.hits += 1
            return True
        self.misses += 1
        return False

    def fill(self, addr: int) -> None:
        key = self._key(addr)
        s = self._sets[self._set_index(key)]
        s[key] = True
        s.move_to_end(key)
        while len(s) > self.ways:
            s.popitem(last=False)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    # -- checkpointing (state_dict protocol) --------------------------------

    def state_dict(self) -> dict[str, object]:
        return {
            "sets": [[key for key in s] for s in self._sets],
            "hits": self.hits,
            "misses": self.misses,
        }

    def load_state_dict(self, state: dict[str, object]) -> None:
        sets = state["sets"]
        if len(sets) != self.num_sets:
            raise ValueError(
                f"{self.name}: checkpoint has {len(sets)} sets, this "
                f"geometry {self.num_sets}")
        self._sets = [OrderedDict((int(key), True) for key in s)
                      for s in sets]
        self.hits = int(state["hits"])
        self.misses = int(state["misses"])


@dataclass
class TranslationResult:
    latency: float
    level: str  # "l1", "l1.5", "l2", "walk"


class TranslationHierarchy:
    """The data-side TLB stack for one generation.

    The L1 prefetcher's virtual-address operation "inherently acts as a
    simple TLB prefetcher" (Section VII-A) — prefetches that cross into a
    new page call :meth:`prefetch_fill` to preload the translation.
    """

    def __init__(self, config: GenerationConfig) -> None:
        self.l1 = Tlb(config.l1d_tlb, "L1D-TLB")
        self.l15: Optional[Tlb] = (
            Tlb(config.l15d_tlb, "L1.5D-TLB") if config.l15d_tlb else None
        )
        self.l2 = Tlb(config.l2_tlb, "L2-TLB")
        self.walks = 0

    def translate(self, addr: int) -> TranslationResult:
        """Latency charged on top of the data access for translation."""
        if self.l1.probe(addr):
            return TranslationResult(0.0, "l1")
        if self.l15 is not None and self.l15.probe(addr):
            self.l1.fill(addr)
            return TranslationResult(self.l15.cfg.hit_latency, "l1.5")
        if self.l2.probe(addr):
            self.l1.fill(addr)
            if self.l15 is not None:
                self.l15.fill(addr)
            return TranslationResult(self.l2.cfg.hit_latency + 2.0, "l2")
        self.walks += 1
        self.l2.fill(addr)
        if self.l15 is not None:
            self.l15.fill(addr)
        self.l1.fill(addr)
        return TranslationResult(PAGE_WALK_LATENCY, "walk")

    def prefetch_fill(self, addr: int) -> None:
        """TLB-prefetch side effect of a virtual-address prefetcher."""
        if self.l15 is not None:
            self.l15.fill(addr)
        else:
            self.l1.fill(addr)

    # -- checkpointing (state_dict protocol) --------------------------------

    def state_dict(self) -> dict[str, object]:
        return {
            "l1": self.l1.state_dict(),
            "l15": self.l15.state_dict() if self.l15 is not None else None,
            "l2": self.l2.state_dict(),
            "walks": self.walks,
        }

    def load_state_dict(self, state: dict[str, object]) -> None:
        if (state["l15"] is None) != (self.l15 is None):
            raise ValueError("L1.5 TLB presence mismatch vs checkpoint")
        self.l1.load_state_dict(state["l1"])
        if self.l15 is not None:
            self.l15.load_state_dict(state["l15"])
        self.l2.load_state_dict(state["l2"])
        self.walks = int(state["walks"])
