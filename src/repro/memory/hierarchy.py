"""Per-generation memory hierarchy composition.

Wires the caches (L1D, sectored L2, exclusive L3), translation stack, miss
buffers, DRAM path and every prefetch engine the generation has (multi-
stride + SMS at L1, Buddy at L2, standalone at the lower levels), and
answers the one question the core timing model asks: *how many cycles does
this access take?*

Timing approach: prefetches install lines immediately but carry a
``ready`` time in an in-flight table; a demand access that arrives before
``ready`` pays the residual latency (late prefetch), after it pays the hit
latency (timely prefetch).  This captures prefetch timeliness — the reason
degree scaling and two-pass exist — without a full event queue.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..config import GenerationConfig
from ..metrics import formulas
from ..metrics.registry import MetricRegistry, StatsView
from ..observe.events import MemEvent, PrefetchEvent
from ..observe.sink import TraceSink
from ..power import EnergyLedger
from .cache import SetAssocCache
from .coordinated import CoordinatedPolicy
from .dram import DramModel
from .interconnect import MemoryPath, SnoopFilterDirectory
from .mab import MissBufferPool
from .tlb import TranslationHierarchy
from ..prefetch import (
    AddressReorderBuffer,
    BuddyPrefetcher,
    MultiStridePrefetcher,
    SmsPrefetcher,
    StandalonePrefetcher,
    TwoPassController,
)

PAGE_BYTES = 4096


class MemoryStats(StatsView):
    """Registry-backed view of the ``mem.*`` stats hierarchy."""

    _FIELDS = {
        "loads": "mem.loads",
        "stores": "mem.stores",
        "load_latency_sum": "mem.load_latency_sum",
        "l1_hits": "mem.l1.hits",
        "l1_late_prefetch_hits": "mem.l1.late_prefetch_hits",
        "l2_hits": "mem.l2.hits",
        "l3_hits": "mem.l3.hits",
        "dram_accesses": "mem.dram.accesses",
        "prefetches_issued": "mem.prefetch.issued",
        "prefetch_dram_traffic": "mem.prefetch.dram_traffic",
    }
    _DERIVED = {"average_load_latency": "mem.average_load_latency"}
    _FORMULAS = (
        ("mem.average_load_latency", ("mem.load_latency_sum", "mem.loads"),
         formulas.average_latency),
    )


class MemoryHierarchy:
    """The full data-side memory system for one generation.

    ``corunners`` models cluster-mates contending for a *shared* L2
    (Table I: M1/M2 share one L2 among 4 cores, M5/M6 among 2; M3/M4 are
    private).  Each active co-runner on a shared L2 claims a slice of its
    capacity and adds queueing to its access latency; private L2s are
    unaffected — the trade the paper's M3 transition made.
    """

    #: Extra L2 access latency per contending co-runner (bank conflicts +
    #: request queueing on the shared macro).
    L2_CONTENTION_LATENCY = 2.0

    def __init__(self, config: GenerationConfig,
                 ledger: Optional[EnergyLedger] = None,
                 corunners: int = 0,
                 registry: Optional[MetricRegistry] = None,
                 sink: Optional[TraceSink] = None) -> None:
        self.config = config
        self.stats = MemoryStats(registry)
        #: Optional flight recorder for demand/prefetch events.
        self.sink = sink
        #: Serving level of the last `_miss_path` call, read only by the
        #: guarded trace emission in `access()`.
        self._miss_level = "l2"
        self.ledger = (ledger if ledger is not None
                       else EnergyLedger(registry=self.stats.registry))
        self.corunners = corunners
        shared = config.l2_shared_by > 1
        active = min(corunners, config.l2_shared_by - 1) if shared else 0
        self._l2_latency_extra = self.L2_CONTENTION_LATENCY * active
        l2_bytes = config.l2.size_bytes
        if active:
            l2_bytes = l2_bytes // (1 + active)
        self.l1 = SetAssocCache(config.l1d.size_bytes, config.l1d.ways,
                                name="L1D")
        self.l2 = SetAssocCache(l2_bytes, config.l2.ways,
                                sector_bytes=config.l2.sector_bytes,
                                name="L2")
        self.l3: Optional[SetAssocCache] = None
        if config.l3 is not None:
            self.l3 = SetAssocCache(config.l3.size_bytes, config.l3.ways,
                                    name="L3")
        self.tlb = TranslationHierarchy(config)
        self.mab = MissBufferPool(config.l1d_outstanding_misses,
                                  data_less=config.uses_mab)
        self.dram = DramModel(
            base_latency=config.memlat.dram_base_latency,
            page_miss_penalty=config.memlat.dram_page_miss_penalty,
        )
        self.directory = SnoopFilterDirectory()
        self.path = MemoryPath(config.memlat, self.dram, self.directory)
        self.coordinated = CoordinatedPolicy()

        pf = config.prefetch
        self.stride = MultiStridePrefetcher(
            streams=pf.stride_streams,
            min_degree=pf.min_degree,
            max_degree=pf.max_degree,
            integrated_confirmation=pf.integrated_confirmation,
            confirmation_entries=pf.confirmation_entries,
        )
        self.reorder = AddressReorderBuffer(capacity=32)
        self.two_pass = TwoPassController(
            second_pass_delay=config.l2_avg_latency / 2.0
        )
        self.sms: Optional[SmsPrefetcher] = (
            SmsPrefetcher(regions=pf.sms_regions,
                          region_bytes=pf.sms_region_bytes)
            if pf.has_sms else None
        )
        self.buddy: Optional[BuddyPrefetcher] = (
            BuddyPrefetcher(sector_bytes=config.l2.sector_bytes)
            if pf.has_buddy else None
        )
        self.standalone: Optional[StandalonePrefetcher] = (
            StandalonePrefetcher(streams=pf.standalone_streams)
            if pf.has_standalone else None
        )

        # Hot-path cell aliases: `access()` runs once per load/store, so
        # the per-access stat bumps go straight to the registry cells.
        self._c_loads = self.stats.cell("loads")
        self._c_stores = self.stats.cell("stores")
        self._c_lat_sum = self.stats.cell("load_latency_sum")
        self._c_l1_hits = self.stats.cell("l1_hits")
        self._c_l1_late = self.stats.cell("l1_late_prefetch_hits")
        self._bind_structure_gauges()
        #: In-flight fills: line address -> (L1 ready cycle, L2-staged
        #: cycle).  The two-pass scheme stages data in the L2 before the
        #: second pass fills the L1, so a demand access racing the fill
        #: pays at most the residual-to-L2 plus an L2 access.
        self._inflight: Dict[int, Tuple[float, float]] = {}

    def _bind_structure_gauges(self) -> None:
        """Expose cache/TLB/DRAM structure counters as pull metrics."""
        reg = self.stats.registry
        for level, cache in (("l1", self.l1), ("l2", self.l2),
                             ("l3", self.l3)):
            if cache is None:
                continue
            reg.gauge(f"mem.{level}.cache.hits",
                      lambda c=cache: c.hits)
            reg.gauge(f"mem.{level}.cache.misses",
                      lambda c=cache: c.misses)
            reg.gauge(f"mem.{level}.cache.evictions",
                      lambda c=cache: c.evictions)
            reg.gauge(f"mem.{level}.cache.prefetch_fills",
                      lambda c=cache: c.prefetch_fills)
        for level, tlb in (("l1", self.tlb.l1), ("l15", self.tlb.l15),
                           ("l2", self.tlb.l2)):
            if tlb is None:
                continue
            reg.gauge(f"mem.tlb.{level}.hits", lambda t=tlb: t.hits)
            reg.gauge(f"mem.tlb.{level}.misses", lambda t=tlb: t.misses)
        reg.gauge("mem.tlb.walks", lambda: self.tlb.walks)
        reg.gauge("mem.dram.page_hits", lambda: self.dram.page_hits)
        reg.gauge("mem.dram.page_misses", lambda: self.dram.page_misses)

    # -- helpers ------------------------------------------------------------------

    def _line(self, addr: int) -> int:
        return addr & ~63

    def _reap_inflight(self, now: float) -> None:
        if len(self._inflight) > 4096:
            self._inflight = {a: t for a, t in self._inflight.items()
                              if t[0] > now}

    # -- the demand path ---------------------------------------------------------------

    def access(self, pc: int, addr: int, now: float,
               is_store: bool = False) -> float:
        """One demand access; returns its latency in cycles."""
        cfg = self.config
        line = self._line(addr)
        if is_store:
            self._c_stores.value += 1
        else:
            self._c_loads.value += 1

        translation = self.tlb.translate(addr)
        latency = translation.latency

        l1_line = self.l1.probe(addr)
        if l1_line is not None:
            flight = self._inflight.get(line)
            if flight is not None and flight[0] > now:
                # Late prefetch: data is somewhere between DRAM and the
                # L1; pay the residual to the L2 stage plus an L2 access.
                l1_ready, l2_staged = flight
                residual = max(0.0, l2_staged - now) + cfg.l2_avg_latency
                cost = max(cfg.l1_hit_latency, min(residual,
                                                   l1_ready - now))
                latency += cost
                self._c_l1_late.value += 1
                # The line lands in the L1 when this access completes.
                self._inflight[line] = (now + cost, l2_staged)
                level = "l1_late"
            else:
                self._inflight.pop(line, None)
                latency += cfg.l1_hit_latency
                self._c_l1_hits.value += 1
                level = "l1"
            first_prefetch_touch = l1_line.prefetched and not l1_line.accessed
            l1_line.accessed = True
            l1_line.dirty = l1_line.dirty or is_store
            if not is_store:
                self._c_lat_sum.value += latency
            if self.sink is not None:
                self.sink.emit(MemEvent(
                    seq=-1, cycle=now, pc=pc, addr=addr, level=level,
                    latency=latency, store=is_store,
                    tlb_level=translation.level,
                    prefetch_touch=first_prefetch_touch))
            if first_prefetch_touch:
                # A demand touch of a prefetched line is a confirmation:
                # it must keep training the engines so the stream frontier
                # stays ahead instead of stalling until the next raw miss.
                self._train_l1_engines(pc, addr, now)
            return latency

        # ---- L1 miss ------------------------------------------------------
        miss_latency = self._miss_path(pc, addr, line, now, is_store)
        latency += miss_latency
        if not is_store:
            self._c_lat_sum.value += latency
        if self.sink is not None:
            self.sink.emit(MemEvent(
                seq=-1, cycle=now, pc=pc, addr=addr,
                level=self._miss_level, latency=latency, store=is_store,
                tlb_level=translation.level, prefetch_touch=False))

        # Train the L1 engines on this miss (re-order + dedup first).
        self._train_l1_engines(pc, addr, now)
        return latency

    def _miss_path(self, pc: int, addr: int, line: int, now: float,
                   is_store: bool) -> float:
        cfg = self.config
        # In-flight fill (prefetch or previous miss to the same line)?
        flight = self._inflight.get(line)
        if flight is not None:
            l1_ready, l2_staged = flight
            residual = max(0.0, l2_staged - now) + cfg.l2_avg_latency
            delta = max(cfg.l1_hit_latency, min(residual, l1_ready - now))
            self._c_l1_late.value += 1
            self.l1.fill(addr, dirty=is_store)
            self._inflight[line] = (now + delta, l2_staged)
            self._miss_level = "inflight"
            return delta

        if self.buddy is not None:
            self.buddy.on_demand_access(line)
        if self.standalone is not None:
            for paddr in self.standalone.observe(addr):
                self._issue_lower_prefetch(paddr, now)

        l2_line = self.l2.probe(addr)
        if l2_line is not None:
            l2_line.accessed = True
            self.stats.l2_hits += 1
            self._fill_l1(addr, now, is_store)
            self._miss_level = "l2"
            return self._with_mab(
                now, cfg.l2_avg_latency + self._l2_latency_extra, addr)

        # L2 demand miss: the Buddy engine may fetch the neighbour sector.
        if self.buddy is not None:
            buddy_line = self.buddy.on_l2_demand_miss(line)
            if buddy_line is not None:
                self._issue_buddy(buddy_line, now)

        if self.l3 is not None:
            l3_line = self.l3.probe(addr)
            if l3_line is not None:
                self.stats.l3_hits += 1
                # Exclusive hierarchy: the line swaps back inward.
                victim_sector = self.l3.invalidate(addr)
                if victim_sector is not None:
                    self.directory.note_filled(line)  # still on-cluster
                self._fill_l1(addr, now, is_store)
                l2_victim = self.l2.fill(addr)
                new_l2 = self.l2.probe(addr, update_lru=False, count=False)
                if new_l2 is not None:
                    CoordinatedPolicy.mark_reallocated(new_l2)
                if l2_victim is not None:
                    self._handle_l2_castout(l2_victim)
                self._miss_level = "l3"
                return self._with_mab(
                    now, self.config.l3_avg_latency or 30.0, addr)

        # ---- DRAM ------------------------------------------------------------
        lookup_bypass = (self.config.l3_avg_latency or 0.0) * 0.5
        trip = self.path.dram_round_trip(
            addr,
            latency_critical=not is_store,
            bypassed_lookup_latency=lookup_bypass,
        )
        self.stats.dram_accesses += 1
        self.ledger.record("dram_access")
        self._fill_l1(addr, now, is_store)
        l2_victim = self.l2.fill(addr)
        self.directory.note_filled(line)
        if l2_victim is not None:
            self._handle_l2_castout(l2_victim)
        self._miss_level = "dram"
        return self._with_mab(now, trip.latency, addr)

    def _with_mab(self, now: float, service: float, addr: int) -> float:
        """Charge the miss through an L1 miss buffer.

        The extra wait when every buffer is busy models the MLP bound the
        paper discusses growing from 8 (M1) to 40 (M6) entries.  The wait
        is capped at one service interval: the core's own dispatch stall
        throttles arrivals beyond that in the integrated model.
        """
        delay = self.mab.allocate(now, now + service, addr)
        return min(delay, service) + service

    def _fill_l1(self, addr: int, now: float, is_store: bool) -> None:
        victim = self.l1.fill(addr, dirty=is_store)
        if victim is not None and victim.dirty:
            # Writeback into the L2 (timing-neutral at this granularity).
            self.l2.fill(victim.address, dirty=True)

    def _handle_l2_castout(self, victim) -> None:
        """Coordinated exclusive-L3 castout handling (Section VIII-A)."""
        if self.l3 is None:
            self.directory.note_evicted(victim.address)
            return
        decision = self.coordinated.classify_castout(victim)
        if not decision.allocate:
            self.directory.note_evicted(victim.address)
            return
        for off in range(0, self.l2.sector_bytes, 64):
            if victim.valid_mask & (1 << (off // 64)):
                l3_victim = self.l3.fill(victim.address + off,
                                         dirty=victim.dirty,
                                         insert_lru=not decision.elevated)
                if l3_victim is not None:
                    self.directory.note_evicted(l3_victim.address)

    # -- prefetch issue ------------------------------------------------------------------

    def _train_l1_engines(self, pc: int, addr: int, now: float) -> None:
        released = self.reorder.insert(addr)
        stride_prefetches: List[int] = []
        for rline in released:
            stride_prefetches.extend(self.stride.train(rline))
        stride_covered = bool(stride_prefetches)
        for paddr in stride_prefetches:
            self._issue_l1_prefetch(paddr, now, to_l1=True)
        if self.sms is not None:
            for req in self.sms.train_miss(pc, addr,
                                           stride_covered=stride_covered):
                self._issue_l1_prefetch(req.address, now, to_l1=req.to_l1)

    def _prefetch_source_latency(self, paddr: int) -> float:
        """Where would this prefetch's data come from, and how long?"""
        cfg = self.config
        if self.l2.probe(paddr, update_lru=False, count=False) is not None:
            return cfg.l2_avg_latency
        if (self.l3 is not None
                and self.l3.probe(paddr, update_lru=False,
                                  count=False) is not None):
            return cfg.l3_avg_latency or 30.0
        return (cfg.memlat.dram_base_latency
                + 3 * cfg.memlat.async_crossing_latency
                + cfg.memlat.interconnect_queue_latency)

    def _issue_l1_prefetch(self, paddr: int, now: float,
                           to_l1: bool = True) -> None:
        """Issue one L1 prefetch through the one-/two-pass machinery."""
        cfg = self.config
        line = self._line(paddr)
        if self.l1.contains(paddr):
            return
        self.stats.prefetches_issued += 1
        self.ledger.record("prefetch_issue")
        self._reap_inflight(now)

        source_latency = self._prefetch_source_latency(paddr)
        l2_hit = self.l2.probe(paddr, update_lru=False, count=False) is not None
        from_dram = (not l2_hit and (self.l3 is None or
                     self.l3.probe(paddr, update_lru=False,
                                   count=False) is None))
        plan = self.two_pass.plan()
        if plan.fill_l2_first:
            self.two_pass.observe_first_pass(l2_hit)
            staged = now + source_latency
            ready = staged + plan.second_pass_delay
        else:
            # One-pass: needs an L1 miss buffer; model the queueing wait
            # as a small delay when the pool is saturated.
            free = self.mab.available(now)
            wait = 0.0 if free > 0 else cfg.l2_avg_latency
            staged = now + source_latency + wait
            ready = staged
        if from_dram:
            self.stats.prefetch_dram_traffic += 1
            self.dram.access(paddr)
        if self.sink is not None:
            self.sink.emit(PrefetchEvent(
                seq=-1, cycle=now, addr=paddr, engine="l1",
                target_level="l1" if to_l1 else "l2",
                from_dram=from_dram))
        # Install: L2 always learns the line; L1 only for full prefetches.
        if not l2_hit:
            l2_victim = self.l2.fill(paddr, prefetched=True)
            if l2_victim is not None:
                self._handle_l2_castout(l2_victim)
            if self.l3 is not None:
                self.l3.invalidate(paddr)  # exclusivity
            self.directory.note_filled(line)
        if to_l1:
            self.l1.fill(paddr, prefetched=True)
            self._inflight[line] = (ready, staged)
        # Virtual-address engine doubles as a TLB prefetcher.
        if (paddr // PAGE_BYTES) != ((paddr - 64) // PAGE_BYTES):
            self.tlb.prefetch_fill(paddr)

    def _issue_buddy(self, buddy_line: int, now: float) -> None:
        """Buddy fills the invalid neighbour subline of an L2 sector."""
        if self.l2.probe(buddy_line, update_lru=False, count=False) is None:
            from_dram = (self.l3 is None
                         or self.l3.probe(buddy_line, update_lru=False,
                                          count=False) is None)
            if from_dram:
                self.stats.prefetch_dram_traffic += 1
                self.dram.access(buddy_line)
            self.l2.fill(buddy_line, prefetched=True)
            self.directory.note_filled(buddy_line)
            if self.sink is not None:
                self.sink.emit(PrefetchEvent(
                    seq=-1, cycle=now, addr=buddy_line, engine="buddy",
                    target_level="l2", from_dram=from_dram))

    # -- checkpointing (state_dict protocol) --------------------------------
    # The registry (``mem.*`` counters) and the energy ledger are owned and
    # checkpointed by the simulator; every structure here is restored IN
    # PLACE so the gauges bound in `_bind_structure_gauges` keep reading
    # the same objects.

    def state_dict(self) -> dict[str, object]:
        return {
            "l1": self.l1.state_dict(),
            "l2": self.l2.state_dict(),
            "l3": self.l3.state_dict() if self.l3 is not None else None,
            "tlb": self.tlb.state_dict(),
            "mab": self.mab.state_dict(),
            "dram": self.dram.state_dict(),
            "directory": self.directory.state_dict(),
            "path": self.path.state_dict(),
            "coordinated": self.coordinated.state_dict(),
            "stride": self.stride.state_dict(),
            "reorder": self.reorder.state_dict(),
            "two_pass": self.two_pass.state_dict(),
            "sms": self.sms.state_dict() if self.sms is not None else None,
            "buddy": (self.buddy.state_dict()
                      if self.buddy is not None else None),
            "standalone": (self.standalone.state_dict()
                           if self.standalone is not None else None),
            "inflight": [[addr, ready, staged]
                         for addr, (ready, staged)
                         in self._inflight.items()],
        }

    def load_state_dict(self, state: dict[str, object]) -> None:
        for attr, key in (("l3", "l3"), ("sms", "sms"), ("buddy", "buddy"),
                          ("standalone", "standalone")):
            if (state[key] is None) != (getattr(self, attr) is None):
                raise ValueError(
                    f"memory hierarchy: {attr} presence mismatch vs "
                    f"checkpoint")
        self.l1.load_state_dict(state["l1"])
        self.l2.load_state_dict(state["l2"])
        if self.l3 is not None:
            self.l3.load_state_dict(state["l3"])
        self.tlb.load_state_dict(state["tlb"])
        self.mab.load_state_dict(state["mab"])
        self.dram.load_state_dict(state["dram"])
        self.directory.load_state_dict(state["directory"])
        self.path.load_state_dict(state["path"])
        self.coordinated.load_state_dict(state["coordinated"])
        self.stride.load_state_dict(state["stride"])
        self.reorder.load_state_dict(state["reorder"])
        self.two_pass.load_state_dict(state["two_pass"])
        if self.sms is not None:
            self.sms.load_state_dict(state["sms"])
        if self.buddy is not None:
            self.buddy.load_state_dict(state["buddy"])
        if self.standalone is not None:
            self.standalone.load_state_dict(state["standalone"])
        self._inflight = {int(addr): (float(ready), float(staged))
                          for addr, ready, staged in state["inflight"]}

    def _issue_lower_prefetch(self, paddr: int, now: float) -> None:
        """Standalone-prefetcher fill into the lower-level caches."""
        self.stats.prefetches_issued += 1
        self.ledger.record("prefetch_issue")
        target = self.l3 if self.l3 is not None else self.l2
        if target.probe(paddr, update_lru=False, count=False) is None:
            if (self.l2.probe(paddr, update_lru=False, count=False) is None
                    and not self.l1.contains(paddr)):
                self.stats.prefetch_dram_traffic += 1
                self.dram.access(paddr)
                target.fill(paddr, prefetched=True)
                self.directory.note_filled(self._line(paddr))
                if self.sink is not None:
                    self.sink.emit(PrefetchEvent(
                        seq=-1, cycle=now, addr=paddr, engine="standalone",
                        target_level="l3" if target is self.l3 else "l2",
                        from_dram=True))
