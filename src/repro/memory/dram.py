"""Open-page DRAM model with banks and the early-page-activate hint.

Latency-critical reads on M5 can send "an early page activate command to
the memory controller to speculatively open a new DRAM page" over a
dedicated sideband that bypasses two asynchronous crossings with one
(Section IX); the command "is a hint the memory controller may ignore
under heavy load".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

#: Address bits: 64B line, bank interleave on line address.
_BANK_SHIFT = 6
_ROW_SHIFT = 14  # 16KB row buffer


@dataclass
class DramAccessResult:
    latency: float
    page_hit: bool
    #: The early-activate hint removed the activate latency.
    early_activated: bool = False


class DramModel:
    """Per-bank open row tracking; uniform timing otherwise."""

    def __init__(self, n_banks: int = 16, base_latency: float = 100.0,
                 page_miss_penalty: float = 40.0,
                 activate_ignore_load: int = 12) -> None:
        self.n_banks = n_banks
        self.base_latency = base_latency
        self.page_miss_penalty = page_miss_penalty
        #: Outstanding-request count above which activate hints are ignored.
        self.activate_ignore_load = activate_ignore_load
        self._open_row: Dict[int, int] = {}
        self._pending_activates: Dict[int, int] = {}
        self.accesses = 0
        self.page_hits = 0
        self.page_misses = 0
        self.early_activates_honored = 0
        self.early_activates_ignored = 0
        self.outstanding = 0

    def _bank_row(self, addr: int) -> (int, int):
        bank = (addr >> _BANK_SHIFT) % self.n_banks
        row = addr >> _ROW_SHIFT
        return bank, row

    def early_activate(self, addr: int) -> bool:
        """Speculatively open the page for ``addr``; may be ignored under
        heavy load.  Returns True when honoured."""
        if self.outstanding > self.activate_ignore_load:
            self.early_activates_ignored += 1
            return False
        bank, row = self._bank_row(addr)
        self._pending_activates[bank] = row
        self.early_activates_honored += 1
        return True

    def access(self, addr: int) -> DramAccessResult:
        """One read/write; returns device latency (controller queueing and
        interconnect latency are added by the caller)."""
        self.accesses += 1
        bank, row = self._bank_row(addr)
        open_row = self._open_row.get(bank)
        early = self._pending_activates.pop(bank, None)
        if open_row == row:
            self.page_hits += 1
            return DramAccessResult(self.base_latency, page_hit=True)
        self.page_misses += 1
        self._open_row[bank] = row
        if early == row:
            # Activation already in flight thanks to the sideband hint.
            return DramAccessResult(self.base_latency, page_hit=False,
                                    early_activated=True)
        return DramAccessResult(self.base_latency + self.page_miss_penalty,
                                page_hit=False)

    @property
    def page_hit_rate(self) -> float:
        total = self.page_hits + self.page_misses
        return self.page_hits / total if total else 0.0

    # -- checkpointing (state_dict protocol) --------------------------------

    def state_dict(self) -> dict[str, object]:
        from ..state import to_pairs

        return {
            "open_row": to_pairs(self._open_row),
            "pending_activates": to_pairs(self._pending_activates),
            "accesses": self.accesses,
            "page_hits": self.page_hits,
            "page_misses": self.page_misses,
            "early_activates_honored": self.early_activates_honored,
            "early_activates_ignored": self.early_activates_ignored,
            "outstanding": self.outstanding,
        }

    def load_state_dict(self, state: dict[str, object]) -> None:
        self._open_row = {int(b): int(r) for b, r in state["open_row"]}
        self._pending_activates = {
            int(b): int(r) for b, r in state["pending_activates"]}
        self.accesses = int(state["accesses"])
        self.page_hits = int(state["page_hits"])
        self.page_misses = int(state["page_misses"])
        self.early_activates_honored = int(state["early_activates_honored"])
        self.early_activates_ignored = int(state["early_activates_ignored"])
        self.outstanding = int(state["outstanding"])
