"""Instruction-side cache path.

Table I tracks the L1 instruction cache from 64KB (M1-M5) to 128KB (M6)
and the instruction TLB alongside it; instruction misses share the unified
L2/L3/DRAM path with data.  The front end consumes this as fetch-stall
cycles: a fetch group crossing into a non-resident line stalls until the
line returns.

Timing approximation matches the data side: miss latency equals the level
that supplies the line; in-flight tracking is omitted (sequential-line
fetch runs well ahead through next-line prefetch, modelled as a one-line
lookahead fill).
"""

from __future__ import annotations

from typing import Optional

from ..config import GenerationConfig
from .cache import SetAssocCache
from .hierarchy import MemoryHierarchy
from .tlb import Tlb


class InstructionCache:
    """L1I + ITLB front-end supply, backed by the unified hierarchy."""

    def __init__(self, config: GenerationConfig,
                 memory: Optional[MemoryHierarchy] = None) -> None:
        self.config = config
        self.memory = memory
        self.l1i = SetAssocCache(config.l1i.size_bytes, config.l1i.ways,
                                 name="L1I")
        self.itlb = Tlb(config.l1i_tlb, "L1I-TLB")
        self.hits = 0
        self.misses = 0
        self.fill_stall_cycles = 0.0

    def _line(self, pc: int) -> int:
        return pc & ~63

    def fetch_line(self, pc: int, now: float = 0.0) -> float:
        """Fetch-stall cycles for the line containing ``pc`` (0 on hit).

        On a miss the line is supplied by the unified L2/L3/DRAM path and
        the sequential next line is prefetched alongside (next-line
        instruction prefetch, standard since well before M1).
        """
        line = self._line(pc)
        stall = 0.0
        if not self.itlb.probe(pc):
            self.itlb.fill(pc)
            stall += 2.0  # ITLB refill from the shared L2 TLB
        if self.l1i.probe(line) is not None:
            self.hits += 1
            return stall
        self.misses += 1
        stall += self._supply_latency(line, now)
        self.l1i.fill(line)
        # Next-line prefetch: hide the sequential successor.
        self.l1i.fill(line + 64, prefetched=True)
        self.fill_stall_cycles += stall
        return stall

    def _supply_latency(self, line: int, now: float) -> float:
        cfg = self.config
        if self.memory is None:
            return cfg.l2_avg_latency
        mem = self.memory
        if mem.l2.probe(line, update_lru=False, count=False) is not None:
            return cfg.l2_avg_latency
        if (mem.l3 is not None
                and mem.l3.probe(line, update_lru=False,
                                 count=False) is not None):
            return cfg.l3_avg_latency or 30.0
        # Instruction miss to DRAM: latency-critical read (Section IX
        # lists "instruction cache miss" among the classified reads).
        trip = mem.path.dram_round_trip(
            line, latency_critical=True,
            bypassed_lookup_latency=(cfg.l3_avg_latency or 0.0) * 0.5)
        mem.l2.fill(line)
        mem.directory.note_filled(line)
        return trip.latency

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    # -- checkpointing (state_dict protocol) --------------------------------
    # ``memory`` is a reference to the unified hierarchy, checkpointed by
    # its owner.

    def state_dict(self) -> dict[str, object]:
        return {
            "l1i": self.l1i.state_dict(),
            "itlb": self.itlb.state_dict(),
            "hits": self.hits,
            "misses": self.misses,
            "fill_stall_cycles": self.fill_stall_cycles,
        }

    def load_state_dict(self, state: dict[str, object]) -> None:
        self.l1i.load_state_dict(state["l1i"])
        self.itlb.load_state_dict(state["itlb"])
        self.hits = int(state["hits"])
        self.misses = int(state["misses"])
        self.fill_stall_cycles = float(state["fill_stall_cycles"])
