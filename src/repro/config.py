"""Per-generation microarchitectural configuration (paper Table I).

Every simulator component in this package is parameterized by a
:class:`GenerationConfig`.  The six shipped/completed designs (M1 through M6)
are provided as module-level constants and through :func:`get_generation`.

All performance experiments run every generation at the same 2.6 GHz clock,
as the paper does (Section III), so cycle-based metrics are comparable
across generations.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field, replace
from typing import Dict, Optional, Tuple

#: Simulation clock shared by all generations (Section III).
SIMULATION_FREQUENCY_GHZ = 2.6


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and timing of one cache level.

    ``sector_bytes`` models the L2's sectored tags (two 64B lines share one
    128B tag, Section VIII-B); it equals ``line_bytes`` for non-sectored
    caches.
    """

    size_kib: int
    ways: int
    line_bytes: int = 64
    sector_bytes: int = 64
    hit_latency: float = 4.0
    banks: int = 1
    #: Data bandwidth in bytes per cycle (Table I "L2 BW" row).
    bandwidth_bytes_per_cycle: int = 32

    @property
    def size_bytes(self) -> int:
        return self.size_kib * 1024

    @property
    def num_lines(self) -> int:
        return self.size_bytes // self.line_bytes

    @property
    def num_sets(self) -> int:
        return self.num_lines // self.ways


@dataclass(frozen=True)
class TlbConfig:
    """One TLB level, parameterized as in Table I: total pages as
    ``entries x ways x sectors`` ("Translation parameters are shown as total
    pages (#entries / #ways / #sectors)")."""

    entries: int
    ways: int
    sectors: int = 1
    hit_latency: float = 1.0

    @property
    def total_pages(self) -> int:
        return self.entries * self.sectors


@dataclass(frozen=True)
class BranchPredictorConfig:
    """Branch prediction resources for one generation (Section IV)."""

    #: Scaled Hashed Perceptron geometry.
    shp_tables: int
    shp_rows: int
    shp_weight_bits: int = 8
    ghist_bits: int = 165
    phist_bits: int = 80
    #: mBTB capacity in branch entries (8 per 128B line, Figure 2).
    mbtb_entries: int = 2048
    #: vBTB spill capacity in branch entries.
    vbtb_entries: int = 512
    #: L2BTB capacity in branch entries.
    l2btb_entries: int = 4096
    #: L2BTB-to-mBTB fill latency (cycles) and branches filled per cycle.
    l2btb_fill_latency: int = 4
    l2btb_fill_bandwidth: int = 2
    #: Micro-BTB graph capacity (nodes); M3 doubled it, M5 shrank it.
    ubtb_entries: int = 64
    #: Extra uBTB entries restricted to unconditional branches (M3+).
    ubtb_uncond_only_entries: int = 0
    #: Return address stack depth.
    ras_entries: int = 16
    #: Maximum VPC virtual-branch chain length (Figure 3).
    vpc_max_targets: int = 16
    #: M6 hybrid indirect predictor: dedicated indirect target hash table.
    indirect_hash_entries: int = 0
    #: Length of the VPC prefix retained ahead of the hash lookup (Figure 8).
    vpc_hybrid_targets: int = 5
    #: Taken-branch redirect accelerators (Section IV-C/E).
    has_1at: bool = False
    has_zat_zot: bool = False
    has_empty_line_opt: bool = False
    #: Mispredict Recovery Buffer entries (Section IV-E); 0 disables.
    mrb_entries: int = 0
    #: Taken-branch redirect bubbles for a plain mBTB prediction.
    mbtb_taken_bubbles: int = 2
    #: Bubbles after a uBTB lock (zero-bubble predictor).
    ubtb_taken_bubbles: int = 0


@dataclass(frozen=True)
class PrefetchConfig:
    """Prefetch engine feature selection per generation (Sections VII/VIII)."""

    #: Multi-stride L1 prefetcher is present on all generations.
    stride_streams: int = 8
    stride_max_components: int = 4
    #: Classic confirmation queue entries (M1/M2) or integrated queue depth.
    confirmation_entries: int = 32
    integrated_confirmation: bool = False
    #: Dynamic-degree window limits.
    min_degree: int = 2
    max_degree: int = 16
    #: Spatial Memory Streaming engine (M3+).
    has_sms: bool = False
    sms_regions: int = 64
    sms_region_bytes: int = 1024
    #: Buddy sector prefetcher at L2 (M4+).
    has_buddy: bool = False
    #: Standalone lower-level-cache prefetcher (M5+).
    has_standalone: bool = False
    standalone_streams: int = 16


@dataclass(frozen=True)
class MemoryLatencyConfig:
    """DRAM-path latency features (Section IX) plus baseline timings."""

    #: Uncontended DRAM access latency seen by the cluster, in core cycles,
    #: before any of the fast-path optimizations below.
    dram_base_latency: float = 180.0
    #: Additional latency for a DRAM page miss (activate+precharge).
    dram_page_miss_penalty: float = 40.0
    #: One-way latency of one asynchronous domain crossing, in core cycles.
    async_crossing_latency: float = 8.0
    #: M4+: dedicated DRAM->cluster data fast path (bypasses one crossing
    #: each way plus interconnect queueing).
    has_data_fast_path: bool = False
    #: M5+: speculative cache-bypass read using the snoop-filter directory.
    has_speculative_read: bool = False
    #: M5+: early page activate hint over a sideband interface.
    has_early_page_activate: bool = False
    #: Queueing latency inside the interconnect per direction.
    interconnect_queue_latency: float = 10.0


@dataclass(frozen=True)
class GenerationConfig:
    """Complete description of one Exynos M-series generation.

    Field values for the shipped designs mirror the paper's Table I; latency
    rows are in core cycles at the common 2.6 GHz simulation point.
    """

    name: str
    year_index: int
    process_node: str
    product_frequency_ghz: float

    # Caches (Table I, Table III).
    l1i: CacheConfig = field(default_factory=lambda: CacheConfig(64, 4))
    l1d: CacheConfig = field(default_factory=lambda: CacheConfig(32, 8))
    l2: CacheConfig = field(default_factory=lambda: CacheConfig(2048, 16))
    l3: Optional[CacheConfig] = None
    l2_shared_by: int = 4
    #: Average latencies as reported in Table I (cycles).
    l1_hit_latency: float = 4.0
    l1_cascade_latency: Optional[float] = None  # M4+: load-load cascading
    l2_avg_latency: float = 22.0
    l3_avg_latency: Optional[float] = None

    # Translation (Table I).
    l1i_tlb: TlbConfig = field(default_factory=lambda: TlbConfig(64, 64, 4))
    l1d_tlb: TlbConfig = field(default_factory=lambda: TlbConfig(32, 32, 1))
    l15d_tlb: Optional[TlbConfig] = None
    l2_tlb: TlbConfig = field(default_factory=lambda: TlbConfig(1024, 4, 1))

    # Execution resources (Table I).
    width: int = 4  # decode/rename/retire width
    simple_alus: int = 2  # "S" pipes: add/shift/logical
    complex_alus: int = 0  # "C" pipes: simple + mul/indirect-branch
    complex_div_alus: int = 1  # "CD" pipes: C plus divide
    branch_pipes: int = 1  # "BR" direct-branch pipes
    load_pipes: int = 1
    store_pipes: int = 1
    generic_mem_pipes: int = 0  # "G" pipes: either load or store
    fp_pipes: int = 2
    fmac_pipes: int = 1
    int_prf: int = 96
    fp_prf: int = 96
    rob_size: int = 96
    mispredict_penalty: int = 14
    #: FP latencies (FMAC, FMUL, FADD) in cycles.
    fp_latencies: Tuple[int, int, int] = (5, 4, 3)
    #: Zero-cycle integer register-register moves via rename (M3+).
    has_zero_cycle_moves: bool = False
    #: Load-load cascading: a load can feed a subsequent load at 3 cycles.
    has_load_load_cascading: bool = False

    # L1D outstanding misses (Section VII): fill buffers or MAB entries.
    l1d_outstanding_misses: int = 8
    uses_mab: bool = False  # data-less memory address buffer (M4+)

    # Front-end feature blocks.
    branch: BranchPredictorConfig = field(
        default_factory=lambda: BranchPredictorConfig(shp_tables=8, shp_rows=1024)
    )
    prefetch: PrefetchConfig = field(default_factory=PrefetchConfig)
    memlat: MemoryLatencyConfig = field(default_factory=MemoryLatencyConfig)
    #: Micro-op cache capacity in micro-ops (0 = no UOC; M5+ have 384).
    uoc_uops: int = 0
    uoc_uops_per_cycle: int = 6
    #: Fetch width in instructions per cycle.
    fetch_width: int = 4

    def describe(self) -> str:
        """One-line human-readable summary of this generation."""
        l3 = f"{self.l3.size_kib}KB" if self.l3 else "-"
        return (
            f"{self.name}: {self.width}-wide, ROB {self.rob_size}, "
            f"L1D {self.l1d.size_kib}KB, L2 {self.l2.size_kib}KB, L3 {l3}, "
            f"SHP {self.branch.shp_tables}x{self.branch.shp_rows}"
        )

    def fingerprint(self) -> str:
        """Stable content hash of every configuration field.

        Two configs fingerprint identically iff every (nested) field is
        equal, so the hash is a safe cache key for simulation results:
        any design-exploration tweak — even a hypothetical config that
        reuses a shipped generation's ``name`` — changes the digest.
        """
        return config_fingerprint(self)


def config_fingerprint(config: GenerationConfig) -> str:
    """SHA-256 hex digest of a config's canonical JSON form."""
    import hashlib
    import json

    payload = dataclasses.asdict(config)
    text = json.dumps(payload, sort_keys=True, default=list)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def _m1() -> GenerationConfig:
    return GenerationConfig(
        name="M1",
        year_index=1,
        process_node="14nm",
        product_frequency_ghz=2.6,
        l1i=CacheConfig(64, 4, hit_latency=3.0),
        l1d=CacheConfig(32, 8, hit_latency=4.0),
        l2=CacheConfig(2048, 16, sector_bytes=128, hit_latency=22.0,
                       bandwidth_bytes_per_cycle=16),
        l3=None,
        l2_shared_by=4,
        l1_hit_latency=4.0,
        l2_avg_latency=22.0,
        l3_avg_latency=None,
        l1i_tlb=TlbConfig(64, 64, 4),
        l1d_tlb=TlbConfig(32, 32, 1),
        l15d_tlb=None,
        l2_tlb=TlbConfig(1024, 4, 1),
        width=4,
        fetch_width=4,
        simple_alus=2,
        complex_alus=0,
        complex_div_alus=1,
        branch_pipes=1,
        load_pipes=1,
        store_pipes=1,
        generic_mem_pipes=0,
        fp_pipes=2,
        fmac_pipes=1,
        int_prf=96,
        fp_prf=96,
        rob_size=96,
        mispredict_penalty=14,
        fp_latencies=(5, 4, 3),
        l1d_outstanding_misses=8,
        branch=BranchPredictorConfig(
            shp_tables=8,
            shp_rows=1024,
            ghist_bits=165,
            phist_bits=80,
            mbtb_entries=2048,
            vbtb_entries=512,
            l2btb_entries=4096,
            l2btb_fill_latency=6,
            l2btb_fill_bandwidth=1,
            ubtb_entries=64,
            ras_entries=16,
        ),
        prefetch=PrefetchConfig(
            stride_streams=8,
            confirmation_entries=32,
            integrated_confirmation=False,
            min_degree=2,
            max_degree=8,
        ),
        memlat=MemoryLatencyConfig(),
        uoc_uops=0,
    )


def _m2() -> GenerationConfig:
    # "No significant resource changes from M1 to M2", but several efficiency
    # improvements including deeper queues (Section III): slightly deeper
    # out-of-order window and better prefetch coverage.
    m1 = _m1()
    return replace(
        m1,
        name="M2",
        year_index=2,
        process_node="10nm LPE",
        product_frequency_ghz=2.3,
        rob_size=100,
        prefetch=replace(m1.prefetch, max_degree=12, confirmation_entries=48),
    )


def _m3() -> GenerationConfig:
    return GenerationConfig(
        name="M3",
        year_index=3,
        process_node="10nm LPP",
        product_frequency_ghz=2.7,
        l1i=CacheConfig(64, 4, hit_latency=3.0),
        l1d=CacheConfig(64, 8, hit_latency=4.0),
        l2=CacheConfig(512, 8, sector_bytes=128, hit_latency=12.0,
                       bandwidth_bytes_per_cycle=32),
        l3=CacheConfig(4096, 16, banks=4, hit_latency=37.0),
        l2_shared_by=1,
        l1_hit_latency=4.0,
        l2_avg_latency=12.0,
        l3_avg_latency=37.0,
        l1i_tlb=TlbConfig(64, 64, 8),
        l1d_tlb=TlbConfig(32, 32, 1),
        l15d_tlb=TlbConfig(128, 4, 4, hit_latency=2.0),
        l2_tlb=TlbConfig(1024, 4, 4),
        width=6,
        fetch_width=6,
        simple_alus=2,
        complex_alus=1,
        complex_div_alus=1,
        branch_pipes=1,
        load_pipes=2,
        store_pipes=1,
        generic_mem_pipes=0,
        fp_pipes=3,
        fmac_pipes=3,
        int_prf=192,
        fp_prf=192,
        rob_size=228,
        mispredict_penalty=16,
        fp_latencies=(4, 3, 2),
        has_zero_cycle_moves=True,
        l1d_outstanding_misses=12,
        branch=BranchPredictorConfig(
            shp_tables=8,
            shp_rows=2048,  # M3 doubled SHP rows
            ghist_bits=165,
            phist_bits=80,
            mbtb_entries=3072,
            vbtb_entries=768,
            l2btb_entries=8192,  # doubled L2BTB
            l2btb_fill_latency=6,
            l2btb_fill_bandwidth=1,
            ubtb_entries=64,
            ubtb_uncond_only_entries=64,  # doubled graph, uncond-only adds
            ras_entries=32,
            has_1at=True,
        ),
        prefetch=PrefetchConfig(
            stride_streams=12,
            confirmation_entries=16,
            integrated_confirmation=True,
            min_degree=4,
            max_degree=16,
            has_sms=True,
        ),
        memlat=MemoryLatencyConfig(),
        uoc_uops=0,
    )


def _m4() -> GenerationConfig:
    m3 = _m3()
    return replace(
        m3,
        name="M4",
        year_index=4,
        process_node="8nm LPP",
        product_frequency_ghz=2.7,
        l1d=CacheConfig(64, 4, hit_latency=4.0),
        l2=CacheConfig(1024, 8, sector_bytes=128, hit_latency=12.0,
                       bandwidth_bytes_per_cycle=32),
        l3=CacheConfig(3072, 16, banks=3, hit_latency=37.0),
        l1_cascade_latency=3.0,
        l1d_tlb=TlbConfig(48, 48, 1),
        load_pipes=1,
        store_pipes=1,
        generic_mem_pipes=1,
        fp_prf=176,
        has_load_load_cascading=True,
        l1d_outstanding_misses=32,
        uses_mab=True,
        branch=replace(
            m3.branch,
            l2btb_entries=16384,  # doubled again (4x M1)
            l2btb_fill_latency=4,  # latency slightly reduced
            l2btb_fill_bandwidth=2,  # bandwidth improved 2x
        ),
        prefetch=replace(m3.prefetch, has_buddy=True, min_degree=6,
                         max_degree=24),
        memlat=MemoryLatencyConfig(has_data_fast_path=True),
    )


def _m5() -> GenerationConfig:
    m4 = _m4()
    return replace(
        m4,
        name="M5",
        year_index=5,
        process_node="7nm",
        product_frequency_ghz=2.8,
        l2=CacheConfig(2048, 8, sector_bytes=128, hit_latency=13.5,
                       bandwidth_bytes_per_cycle=32),
        l3=CacheConfig(3072, 12, banks=2, hit_latency=30.0),
        l2_shared_by=2,
        l2_avg_latency=13.5,
        l3_avg_latency=30.0,
        simple_alus=4,
        complex_alus=1,
        complex_div_alus=1,
        branch_pipes=1,
        branch=replace(
            m4.branch,
            shp_tables=16,  # 8 -> 16 tables
            shp_rows=2048,
            ghist_bits=206,  # +25% GHIST
            phist_bits=80,
            l2btb_entries=16384,
            ubtb_entries=48,  # uBTB area reduced
            ubtb_uncond_only_entries=48,
            has_zat_zot=True,
            has_empty_line_opt=True,
            mrb_entries=48,
        ),
        prefetch=replace(m4.prefetch, has_standalone=True, min_degree=8,
                         max_degree=32),
        memlat=MemoryLatencyConfig(
            has_data_fast_path=True,
            has_speculative_read=True,
            has_early_page_activate=True,
        ),
        uoc_uops=384,
    )


def _m6() -> GenerationConfig:
    m5 = _m5()
    return replace(
        m5,
        name="M6",
        year_index=6,
        process_node="5nm",
        product_frequency_ghz=2.8,
        l1i=CacheConfig(128, 4, hit_latency=3.0),
        l1d=CacheConfig(128, 8, hit_latency=4.0),
        l2=CacheConfig(2048, 8, sector_bytes=128, hit_latency=13.5,
                       bandwidth_bytes_per_cycle=64),
        l3=CacheConfig(4096, 16, banks=2, hit_latency=30.0),
        l1i_tlb=TlbConfig(64, 64, 8),
        l1d_tlb=TlbConfig(128, 128, 1),
        l2_tlb=TlbConfig(2048, 4, 4),
        width=8,
        fetch_width=8,
        simple_alus=4,
        complex_alus=0,
        complex_div_alus=2,
        branch_pipes=2,
        fp_pipes=4,
        fmac_pipes=4,
        int_prf=224,
        fp_prf=224,
        rob_size=256,
        l1d_outstanding_misses=40,
        branch=replace(
            m5.branch,
            mbtb_entries=4608,  # mBTB +50% vs M5
            vbtb_entries=1024,
            l2btb_entries=32768,
            indirect_hash_entries=1024,  # dedicated indirect target storage
            vpc_hybrid_targets=5,
        ),
        prefetch=replace(m5.prefetch, max_degree=48, stride_streams=16),
        uoc_uops=384,
        uoc_uops_per_cycle=8,
    )


#: The six generations covered by the paper.
M1 = _m1()
M2 = _m2()
M3 = _m3()
M4 = _m4()
M5 = _m5()
M6 = _m6()

GENERATIONS: Dict[str, GenerationConfig] = {
    g.name: g for g in (M1, M2, M3, M4, M5, M6)
}

GENERATION_ORDER: Tuple[str, ...] = ("M1", "M2", "M3", "M4", "M5", "M6")


def get_generation(name: str) -> GenerationConfig:
    """Look up a generation config by name (``"M1"`` .. ``"M6"``)."""
    try:
        return GENERATIONS[name.upper()]
    except KeyError:
        raise ValueError(
            f"unknown generation {name!r}; expected one of {GENERATION_ORDER}"
        ) from None


def all_generations() -> Tuple[GenerationConfig, ...]:
    """All six generations in chronological order."""
    return tuple(GENERATIONS[n] for n in GENERATION_ORDER)
