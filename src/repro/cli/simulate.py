"""``python -m repro simulate`` — one (family, seed, generation) run."""

from __future__ import annotations

import argparse

from ..config import GENERATION_ORDER
from ..engine import run as run_one
from ..traces import FAMILIES, TraceSpec

NAME = "simulate"
HELP = "simulate one workload"


def configure_parser(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--family", default="specint_like",
                        choices=sorted(FAMILIES))
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--length", type=int, default=20_000)
    parser.add_argument("--gen", default="all",
                        help="M1..M6 or 'all'")


def run(args: argparse.Namespace) -> int:
    spec = TraceSpec(args.family, args.seed, args.length)
    trace = spec.build()
    gens = [args.gen.upper()] if args.gen != "all" else list(GENERATION_ORDER)
    print(f"workload {trace.name}: {len(trace)} uops, "
          f"{trace.branch_count} branches, {trace.load_count} loads")
    print(f"{'gen':4s} {'IPC':>6s} {'MPKI':>7s} {'load-lat':>9s} "
          f"{'bubbles/br':>11s} {'dram':>6s}")
    for g in gens:
        r = run_one(trace, g)
        print(f"{g:4s} {r.ipc:6.2f} {r.mpki:7.2f} "
              f"{r.average_load_latency:9.1f} "
              f"{r.branch.bubbles_per_branch:11.2f} "
              f"{r.memory.dram_accesses:6d}")
    return 0
