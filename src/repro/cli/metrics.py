"""``python -m repro metrics`` — stat dump, window series, diffs."""

from __future__ import annotations

import argparse

from ..traces import FAMILIES, TraceSpec

NAME = "metrics"
HELP = "hierarchical stat dump + window series"


def configure_parser(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--family", default="specint_like",
                        choices=sorted(FAMILIES))
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--length", type=int, default=20_000)
    parser.add_argument("--gen", default="M6", help="M1..M6")
    parser.add_argument("--window", type=int, default=2000,
                        help="window interval in instructions (0 disables)")
    parser.add_argument("--warmup", type=int, default=1,
                        help="windows to mark/exclude as warmup")
    parser.add_argument("--json", action="store_true",
                        help="emit the schema-versioned JSON document")
    parser.add_argument("--window-counters", default=None,
                        help="comma-separated registry counters the window "
                             "series should snapshot (default: standard "
                             "eight incl. stall buckets)")
    parser.add_argument("--diff", nargs=2, metavar=("A.json", "B.json"),
                        default=None,
                        help="diff two saved --json documents (or two "
                             "population archives from `population "
                             "--save`) instead of running a simulation")
    parser.add_argument("--top", type=int, default=0,
                        help="with --diff: keep only the N largest relative "
                             "movers (0 = all, lexicographic)")


def run(args: argparse.Namespace) -> int:
    import json

    from ..config import get_generation
    from ..core import GenerationSimulator
    from ..engine.results import RESULT_SCHEMA_VERSION
    from ..metrics import window_metric_series

    if args.diff:
        path_a, path_b = args.diff
        with open(path_a) as f:
            doc_a = json.load(f)
        with open(path_b) as f:
            doc_b = json.load(f)
        pop_a = isinstance(doc_a.get("metrics"), list)
        pop_b = isinstance(doc_b.get("metrics"), list)
        if pop_a != pop_b:
            print("error: cannot diff a population archive against a "
                  "single-run metrics dump")
            return 2
        if pop_a:
            # Population archives (`population --save`): the per-slice
            # delta matrix, with the regression sentinel's windowed
            # significance filter marking which moves are real.
            from ..metrics import (compare_populations, population_rows,
                                   render_population_diff)
            report = compare_populations(population_rows(doc_a),
                                         population_rows(doc_b))
            if args.json:
                print(json.dumps(report, indent=2, sort_keys=True))
            else:
                print(f"A: {path_a}\nB: {path_b}")
                print(render_population_diff(report, top=args.top))
            return 0
        from ..metrics import diff_metric_documents, render_metric_diff
        diff = diff_metric_documents(doc_a, doc_b)
        if args.json:
            print(json.dumps(diff, indent=2, sort_keys=True))
        else:
            print(render_metric_diff(diff, top=args.top))
        return 0

    spec = TraceSpec(args.family, args.seed, args.length)
    trace = spec.build()
    gen = args.gen.upper()
    counters = (tuple(args.window_counters.split(","))
                if args.window_counters else None)
    sim = GenerationSimulator(get_generation(gen))
    r = sim.run(trace, window_interval=args.window,
                window_counters=counters)

    if args.json:
        doc = {
            "schema": RESULT_SCHEMA_VERSION,
            "generation": gen,
            "trace": spec.to_dict(),
            "window_interval": args.window,
            "warmup_windows": args.warmup,
            "metrics": sim.metrics.as_dict(),
            "windows": [w.to_dict() for w in r.windows],
            "series": {
                attr: window_metric_series(r.windows, attr,
                                           warmup=args.warmup)
                for attr in ("ipc", "mpki", "average_load_latency")
            },
        }
        print(json.dumps(doc, indent=2, sort_keys=True))
        return 0

    print(f"{gen} on {trace.name}: {len(trace)} uops, "
          f"ipc {r.ipc:.3f}, mpki {r.mpki:.2f}, "
          f"avg load latency {r.average_load_latency:.1f}")
    print()
    print(sim.metrics.dump())
    if r.windows:
        print()
        print(f"windows (interval={args.window} instructions; first "
              f"{args.warmup} marked as warmup):")
        print(f"  {'#':>3s} {'instrs':>13s} {'IPC':>7s} {'MPKI':>7s} "
              f"{'load-lat':>9s}")
        for w in r.windows:
            tag = "  warmup" if w.index < args.warmup else ""
            print(f"  {w.index:3d} {w.start_instruction:6d}-"
                  f"{w.end_instruction:<6d} {w.ipc:7.3f} {w.mpki:7.2f} "
                  f"{w.average_load_latency:9.1f}{tag}")
    return 0
