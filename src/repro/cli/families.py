"""``python -m repro families`` — list workload families."""

from __future__ import annotations

import argparse

from ..traces import FAMILIES

NAME = "families"
HELP = "list workload families"


def configure_parser(parser: argparse.ArgumentParser) -> None:
    pass


def run(args: argparse.Namespace) -> int:
    for name in sorted(FAMILIES):
        doc = (FAMILIES[name].__doc__ or "").strip().splitlines()
        print(f"  {name:14s} {doc[0] if doc else ''}")
    return 0
