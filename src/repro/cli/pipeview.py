"""``python -m repro pipeview`` — pipeline timeline + exports."""

from __future__ import annotations

import argparse
import sys

NAME = "pipeview"
HELP = ("flight-recorded pipeline timeline (gem5-"
        "o3-pipeview-style) + Chrome/Perfetto export")


def configure_parser(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("spec", help="trace spec as family:seed:length, "
                                     "e.g. specint_like:1:8000")
    parser.add_argument("--gen", default="M6", help="M1..M6")
    parser.add_argument("--start", type=int, default=0,
                        help="first trace index to render")
    parser.add_argument("--count", type=int, default=40,
                        help="instructions (or events with --events) to "
                             "render")
    parser.add_argument("--width", type=int, default=48,
                        help="timeline band width in columns")
    parser.add_argument("--capacity", type=int, default=262_144,
                        help="flight-recorder ring capacity (oldest events "
                             "drop beyond it)")
    parser.add_argument("--events", action="store_true",
                        help="flat event log instead of the stage timeline")
    parser.add_argument("--chrome", default=None, metavar="OUT.json",
                        help="also export a Chrome trace-event JSON "
                             "(with per-window counter tracks)")
    parser.add_argument("--save", default=None, metavar="OUT.jsonl",
                        help="also dump the raw event stream as JSONL")
    parser.add_argument("--stream", default=None, metavar="DIR",
                        help="persist the complete stream as chunked "
                             "JSONL + manifest under DIR (no ring bound; "
                             "read back with repro.observe.load_events)")


def run(args: argparse.Namespace) -> int:
    from ..config import get_generation
    from ..core import GenerationSimulator
    from ..observe import (StreamingTraceSink, TraceSink, chrome_trace_json,
                           events_to_jsonl, read_stream_events,
                           render_event_log, render_pipeview)
    from .common import parse_trace_spec

    try:
        spec = parse_trace_spec(args.spec)
    except ValueError:
        print(f"bad trace spec {args.spec!r}; expected family:seed:length "
              f"(e.g. specint_like:1:8000)", file=sys.stderr)
        return 2
    trace = spec.build()
    gen = args.gen.upper()
    if args.stream:
        sink = StreamingTraceSink(
            args.stream,
            meta={"generation": gen, "trace": spec.to_dict()})
    else:
        sink = TraceSink(capacity=args.capacity)
    sim = GenerationSimulator(get_generation(gen), trace_sink=sink)
    # Windows feed the Chrome counter tracks; stdout doesn't show them.
    r = sim.run(trace, window_interval=2000 if args.chrome else 0)
    if args.stream:
        sink.close()
        events = read_stream_events(args.stream)
    else:
        events = r.events

    print(f"{gen} on {trace.name}: {len(trace)} uops, ipc {r.ipc:.3f}; "
          f"{sink.emitted} events recorded"
          + (f" ({sink.dropped} dropped, oldest first)" if sink.dropped
             else ""))
    if args.events:
        print(render_event_log(events, limit=args.count))
    else:
        print(render_pipeview(events, start=args.start, count=args.count,
                              width=args.width))
    if args.chrome:
        with open(args.chrome, "w") as f:
            f.write(chrome_trace_json(events, windows=r.windows))
        print(f"chrome trace written to {args.chrome} "
              f"(load in chrome://tracing or ui.perfetto.dev)",
              file=sys.stderr)
    if args.save:
        with open(args.save, "w") as f:
            f.write(events_to_jsonl(events) + "\n")
        print(f"events written to {args.save}", file=sys.stderr)
    if args.stream:
        print(f"chunked stream written to {args.stream} "
              f"({sink.emitted} events, "
              f"{len(sink.manifest()['chunks'])} chunks)", file=sys.stderr)
    return 0
