"""The declarative subcommand registry behind ``python -m repro``.

Each command lives in its own module under :mod:`repro.cli` and
registers itself as a :class:`Command` — ``(name, help,
configure_parser, run)`` — in :data:`COMMANDS`.  The parser, the
dispatch loop and the README command table are all derived from that
one tuple, so adding a subcommand is one new module plus one entry
here; nothing else grows.

``run`` callables return the process exit code (int).  Argument
surfaces and exit codes are identical to the pre-package monolithic
``repro/__main__.py`` — that module is now a shim over this registry.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from . import (checkpoint, completion, families, fig1, lint, metrics,
               pipeview, population, regress, report, runs, simulate,
               tables, tracediff)


@dataclass(frozen=True)
class Command:
    """One subcommand: its name, one-line help, and the two hooks."""

    name: str
    help: str
    configure_parser: Callable[[argparse.ArgumentParser], None]
    run: Callable[[argparse.Namespace], int]


def _command(module) -> Command:
    """Adapt a command module (NAME/HELP/configure_parser/run)."""
    return Command(name=module.NAME, help=module.HELP,
                   configure_parser=module.configure_parser,
                   run=module.run)


#: Every subcommand, in CLI listing order.
COMMANDS: Tuple[Command, ...] = tuple(_command(m) for m in (
    simulate,
    tables,
    population,
    fig1,
    report,
    families,
    metrics,
    pipeview,
    tracediff,
    checkpoint,
    runs,
    regress,
    lint,
    completion,
))


def build_parser() -> argparse.ArgumentParser:
    """The full ``python -m repro`` parser, built from the registry."""
    p = argparse.ArgumentParser(
        prog="python -m repro",
        description="Exynos M-series microarchitecture reproduction "
                    "(ISCA 2020)",
    )
    sub = p.add_subparsers(dest="command", required=True)
    for cmd in COMMANDS:
        parser = sub.add_parser(cmd.name, help=cmd.help)
        cmd.configure_parser(parser)
        parser.set_defaults(func=cmd.run)
    return p


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


def command_table() -> str:
    """The CLI command table as GitHub markdown, straight from the
    registry — the README section between the ``cli-table`` markers is
    this string (``tests/test_cli_registry.py`` pins the two equal)."""
    lines = ["| Command | What it does |", "|---|---|"]
    for cmd in COMMANDS:
        lines.append(f"| `python -m repro {cmd.name}` | {cmd.help} |")
    return "\n".join(lines)
