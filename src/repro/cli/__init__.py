"""The ``python -m repro`` command-line package.

One module per subcommand; each exposes ``NAME``, ``HELP``,
``configure_parser(parser)`` and ``run(args) -> int``.  The registry
(:mod:`repro.cli.registry`) collects them declaratively: the parser,
the dispatcher and the README command table are all derived from the
single ``COMMANDS`` tuple, so adding a command is one module plus one
import line.
"""

from .registry import COMMANDS, Command, build_parser, command_table, main

__all__ = [
    "COMMANDS",
    "Command",
    "build_parser",
    "command_table",
    "main",
]
