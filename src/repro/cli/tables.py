"""``python -m repro tables`` — render Tables I-IV."""

from __future__ import annotations

import argparse

from .common import add_engine_flags, engine_kwargs

NAME = "tables"
HELP = "render Tables I-IV"


def configure_parser(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--population", action="store_true",
                        help="also run the population for Table IV")
    parser.add_argument("--slices", type=int, default=24)
    parser.add_argument("--length", type=int, default=12_000)
    add_engine_flags(parser)


def run(args: argparse.Namespace) -> int:
    from ..harness import (render_table1, render_table2, render_table3,
                           render_table4, run_population)
    print(render_table1())
    print()
    print(render_table2())
    print()
    print(render_table3())
    if args.population:
        pop = run_population(n_slices=args.slices,
                             slice_length=args.length,
                             **engine_kwargs(args))
        print()
        print(render_table4(pop))
    return 0
