"""``python -m repro report`` — the full reproduction report."""

from __future__ import annotations

import argparse

from .common import add_engine_flags, engine_kwargs

NAME = "report"
HELP = "full reproduction report"


def configure_parser(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--slices", type=int, default=24)
    parser.add_argument("--length", type=int, default=12_000)
    parser.add_argument("--out", default=None, help="write to a file")
    parser.add_argument("--no-fig1", action="store_true")
    add_engine_flags(parser)


def run(args: argparse.Namespace) -> int:
    from ..harness.report import build_report
    kwargs = engine_kwargs(args)
    kwargs.pop("progress", None)
    kwargs.pop("telemetry", None)  # build_report drives the engine itself
    text = build_report(n_slices=args.slices, slice_length=args.length,
                        include_fig1=not args.no_fig1, **kwargs)
    if args.out:
        with open(args.out, "w") as f:
            f.write(text)
        print(f"report written to {args.out}")
    else:
        print(text)
    return 0
