"""``python -m repro runs`` — inspect the run ledger.

``list`` shows recent records (newest last, 1-based from-the-end
indices usable as references), ``show`` dumps one record, ``compare``
diffs two records field by field (provenance drift, knob changes,
engine cost, per-generation summary deltas), and ``gc`` prunes the
ledger down to the newest N records.
"""

from __future__ import annotations

import argparse
import json
from typing import Any, Dict

NAME = "runs"
HELP = "list, inspect, compare, or prune run-ledger records"


def configure_parser(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--cache-dir", default=None,
                        help="cache root holding the ledger (default: "
                             "REPRO_CACHE_DIR or ~/.cache/repro)")
    sub = parser.add_subparsers(dest="runs_command", required=True)

    list_p = sub.add_parser("list", help="recent ledger records")
    list_p.add_argument("-n", "--limit", type=int, default=20,
                        help="records to show (newest last; 0 = all)")
    list_p.add_argument("--json", action="store_true",
                        help="emit the records as JSON lines")
    list_p.set_defaults(runs_func=_run_list)

    show = sub.add_parser("show", help="dump one record")
    show.add_argument("ref", help="record id (or unique prefix), or "
                                  "1-based index from the end (1 = latest)")
    show.set_defaults(runs_func=_run_show)

    compare = sub.add_parser("compare",
                             help="field-level diff of two records")
    compare.add_argument("ref_a")
    compare.add_argument("ref_b")
    compare.add_argument("--json", action="store_true",
                         help="emit the comparison document as JSON")
    compare.set_defaults(runs_func=_run_compare)

    gc = sub.add_parser("gc", help="drop all but the newest N records")
    gc.add_argument("--keep", type=int, default=100,
                    help="records to keep (0 empties the ledger)")
    gc.set_defaults(runs_func=_run_gc)


def _describe(record: Dict[str, Any]) -> str:
    kind = record.get("kind", "?")
    params = record.get("params", {}) or {}
    if kind == "population":
        gens = params.get("generations") or []
        detail = (f"{params.get('n_slices')}x{params.get('slice_length')} "
                  f"seed={params.get('seed')} gens={len(gens)}")
    else:
        trace = params.get("trace") or {}
        detail = (f"{params.get('generation')} on "
                  f"{trace.get('family', trace.get('trace_name', '?'))} "
                  f"seed={trace.get('seed', '?')}")
    engine = record.get("engine", {}) or {}
    wall = engine.get("wall_seconds")
    wall_text = f" {wall:8.2f}s" if isinstance(wall, (int, float)) else ""
    kips = engine.get("kips")
    if isinstance(kips, (int, float)) and kips > 0:
        kips_text = f" {kips:7.1f}k"
    else:
        # Pre-throughput records and fully-cached runs have no KIPS.
        kips_text = f" {'-':>8s}"
    return (f"{record.get('id', '?'):<12s} {record.get('timestamp', '?')} "
            f"{kind:<10s}{wall_text}{kips_text}  {detail}")


def _run_list(args: argparse.Namespace) -> int:
    from ..observe.ledger import read_ledger

    records = read_ledger(args.cache_dir)
    if not records:
        print("ledger is empty")
        return 0
    shown = records[-args.limit:] if args.limit > 0 else records
    if args.json:
        for record in shown:
            print(json.dumps(record, sort_keys=True))
        return 0
    offset = len(records) - len(shown)
    print(f"{len(records)} ledger records "
          f"(showing {len(shown)}; ref = index from end or id prefix)")
    for i, record in enumerate(shown):
        index = len(records) - (offset + i)
        print(f"  [{index:>3d}] {_describe(record)}")
    return 0


def _resolve(args: argparse.Namespace, ref: str):
    from ..observe.ledger import find_record, read_ledger

    records = read_ledger(args.cache_dir)
    record = find_record(records, ref)
    if record is None:
        print(f"error: no unique ledger record matches {ref!r} "
              f"({len(records)} records; see `repro runs list`)")
    return record


def _run_show(args: argparse.Namespace) -> int:
    record = _resolve(args, args.ref)
    if record is None:
        return 2
    print(json.dumps(record, indent=2, sort_keys=True))
    return 0


def _run_compare(args: argparse.Namespace) -> int:
    from ..observe.ledger import compare_records

    record_a = _resolve(args, args.ref_a)
    record_b = _resolve(args, args.ref_b)
    if record_a is None or record_b is None:
        return 2
    comparison = compare_records(record_a, record_b)
    if args.json:
        print(json.dumps(comparison, indent=2, sort_keys=True))
        return 0
    print(f"A: {comparison['a']['id']} @ {comparison['a']['timestamp']}")
    print(f"B: {comparison['b']['id']} @ {comparison['b']['timestamp']}")
    print("results identical: "
          + ("yes (archive digests match)"
             if comparison["identical_results"] else "no"))
    for section in ("provenance", "params", "engine", "summary"):
        entries = comparison[section]
        if not entries:
            continue
        print(f"{section}:")
        for key in sorted(entries):
            entry = entries[key]
            delta = entry.get("delta")
            delta_text = (f"  d={delta:+.6g}"
                          if isinstance(delta, (int, float)) else "")
            print(f"  {key}: {entry['a']} -> {entry['b']}{delta_text}")
    return 0


def _run_gc(args: argparse.Namespace) -> int:
    from ..observe.ledger import gc_ledger

    removed = gc_ledger(args.keep, args.cache_dir)
    print(f"removed {removed} ledger records (kept newest {args.keep})")
    return 0


def run(args: argparse.Namespace) -> int:
    return args.runs_func(args)
