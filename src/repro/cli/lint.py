"""``python -m repro lint`` — simlint static analysis."""

from __future__ import annotations

import argparse

NAME = "lint"
HELP = "simlint: determinism & simulation-safety checks"


def configure_parser(parser: argparse.ArgumentParser) -> None:
    from ..analysis.cli import add_lint_arguments
    add_lint_arguments(parser)


def run(args: argparse.Namespace) -> int:
    from ..analysis.cli import run_lint_command
    return run_lint_command(args)
