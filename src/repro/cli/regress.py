"""``python -m repro regress`` — the CI regression gate.

Compares a current population archive against a baseline — another
archive, or a ledger record via ``--ledger REF`` — cell by
(generation x trace x metric) cell, suppressing moves the windowed
permutation test calls noise (see :mod:`repro.metrics.regress`).
Exit code 1 when a significant regression survives the filter, so a
workflow can gate on it directly:

.. code-block:: console

   $ python -m repro population --save BASELINE.json
   ...change the model...
   $ python -m repro population --save CURRENT.json
   $ python -m repro regress BASELINE.json CURRENT.json
"""

from __future__ import annotations

import argparse
import json

from ..metrics.regress import (DEFAULT_ALPHA, DEFAULT_MIN_REL,
                               DEFAULT_PERMUTATIONS, DEFAULT_SEED,
                               REGRESSION_METRICS)

NAME = "regress"
HELP = "compare population archives; exit 1 on significant regression"


def configure_parser(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("baseline", nargs="?", default=None,
                        metavar="BASELINE.json",
                        help="baseline population archive (omit with "
                             "--ledger)")
    parser.add_argument("current", metavar="CURRENT.json",
                        help="current population archive")
    parser.add_argument("--ledger", default=None, metavar="REF",
                        help="take the baseline from this run-ledger "
                             "record (id prefix or 1-based index from "
                             "the end) instead of a file")
    parser.add_argument("--cache-dir", default=None,
                        help="cache root holding the ledger")
    parser.add_argument("--metrics", default=None,
                        help="comma-separated metrics to gate on "
                             f"(default: {','.join(REGRESSION_METRICS)})")
    parser.add_argument("--alpha", type=float, default=DEFAULT_ALPHA,
                        help="permutation-test significance level")
    parser.add_argument("--min-rel", type=float, default=DEFAULT_MIN_REL,
                        help="minimum relative move before a cell can "
                             "regress")
    parser.add_argument("--permutations", type=int,
                        default=DEFAULT_PERMUTATIONS,
                        help="sign-flip permutations per tested cell")
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED,
                        help="permutation RNG seed")
    parser.add_argument("--top", type=int, default=10,
                        help="sub-threshold movers to list (0 = none)")
    parser.add_argument("--json", action="store_true",
                        help="emit the schema-versioned report JSON")


def run(args: argparse.Namespace) -> int:
    from ..metrics.regress import (compare_populations, population_rows,
                                   regress_exit_code, render_regress)

    if (args.baseline is None) == (args.ledger is None):
        print("error: provide exactly one baseline — BASELINE.json "
              "or --ledger REF")
        return 2

    if args.ledger is not None:
        from ..observe.ledger import find_record, read_ledger

        records = [r for r in read_ledger(args.cache_dir)
                   if r.get("kind") == "population"]
        record = find_record(records, args.ledger)
        if record is None:
            print(f"error: no unique population ledger record matches "
                  f"{args.ledger!r} ({len(records)} candidates; see "
                  f"`repro runs list`)")
            return 2
        baseline_doc = record
        baseline_label = f"ledger:{record.get('id')}"
    else:
        with open(args.baseline) as f:
            baseline_doc = json.load(f)
        baseline_label = args.baseline

    with open(args.current) as f:
        current_doc = json.load(f)

    try:
        base_rows = population_rows(baseline_doc)
        current_rows = population_rows(current_doc)
    except ValueError as error:
        print(f"error: {error}")
        return 2

    metrics = (tuple(m.strip() for m in args.metrics.split(",") if m.strip())
               if args.metrics else None)
    try:
        report = compare_populations(
            base_rows, current_rows, metrics=metrics, alpha=args.alpha,
            min_rel=args.min_rel, permutations=args.permutations,
            seed=args.seed)
    except ValueError as error:
        print(f"error: {error}")
        return 2
    report["baseline"] = baseline_label
    report["current"] = args.current

    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print(f"baseline: {baseline_label}")
        print(f"current:  {args.current}")
        print(render_regress(report, top=args.top))
    return regress_exit_code(report)
