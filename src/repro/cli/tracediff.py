"""``python -m repro tracediff`` — first-divergence trace comparison."""

from __future__ import annotations

import argparse
import sys

NAME = "tracediff"
HELP = ("align two generations' event streams for one workload and "
        "report the first divergent event")


def configure_parser(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("spec", nargs="?", default=None,
                        help="trace spec as family:seed:length, "
                             "e.g. specint_like:1:6000 (omit with "
                             "--streams)")
    parser.add_argument("--a", default="M1", metavar="GEN",
                        help="baseline generation (default M1)")
    parser.add_argument("--b", default="M6", metavar="GEN",
                        help="comparison generation (default M6)")
    parser.add_argument("--streams", nargs=2, metavar=("A", "B"),
                        default=None,
                        help="diff two persisted streams (chunked "
                             "directories or flat .jsonl files) instead "
                             "of simulating")
    parser.add_argument("--json", action="store_true",
                        help="emit the divergence report as JSON")


def run(args: argparse.Namespace) -> int:
    import json

    from ..observe import diff_event_streams, render_tracediff

    if args.streams:
        from ..observe import load_events
        path_a, path_b = args.streams
        a_events = load_events(path_a)
        b_events = load_events(path_b)
        diff = diff_event_streams(a_events, b_events,
                                  a_label=path_a, b_label=path_b,
                                  workload=args.spec or "")
    else:
        if args.spec is None:
            print("tracediff: a family:seed:length spec is required "
                  "unless --streams is given", file=sys.stderr)
            return 2
        from ..config import get_generation
        from ..core import GenerationSimulator
        from ..observe import TraceSink
        from .common import parse_trace_spec
        try:
            spec = parse_trace_spec(args.spec)
        except ValueError:
            print(f"bad trace spec {args.spec!r}; expected "
                  f"family:seed:length (e.g. specint_like:1:6000)",
                  file=sys.stderr)
            return 2
        trace = spec.build()
        gen_a, gen_b = args.a.upper(), args.b.upper()
        streams = []
        for gen in (gen_a, gen_b):
            sink = TraceSink(capacity=None)
            sim = GenerationSimulator(get_generation(gen), trace_sink=sink)
            sim.run(trace, window_interval=0)
            streams.append(sink.events())
        diff = diff_event_streams(streams[0], streams[1],
                                  a_label=gen_a, b_label=gen_b,
                                  workload=trace.name)

    if args.json:
        print(json.dumps(diff.to_dict(), indent=2, sort_keys=True))
    else:
        print(render_tracediff(diff))
    return 0
