"""``python -m repro fig1`` — the Figure 1 GHIST-length sweep."""

from __future__ import annotations

import argparse

from .common import add_engine_flags, engine_kwargs

NAME = "fig1"
HELP = "GHIST sweep (Figure 1)"


def configure_parser(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--traces", type=int, default=5)
    parser.add_argument("--length", type=int, default=30_000)
    add_engine_flags(parser)


def run(args: argparse.Namespace) -> int:
    from ..harness import figure1_ghist_sweep
    kwargs = engine_kwargs(args)
    kwargs.pop("progress", None)
    sweep = figure1_ghist_sweep(n_traces=args.traces,
                                trace_length=args.length, **kwargs)
    print("FIG 1 - avg MPKI vs GHIST range bits")
    for bits, mpki in sweep.items():
        print(f"  {bits:4d}: {mpki:5.2f} " + "#" * int(mpki * 8))
    return 0
