"""``python -m repro checkpoint`` — save/inspect/resume simulator state.

``save`` runs a trace prefix and writes the versioned checkpoint JSON
(with the trace spec embedded so ``restore`` can regenerate the
workload), ``info`` summarizes a checkpoint file, and ``restore``
resumes the remaining instructions and prints the final stats — which
are bit-identical to an uninterrupted run of the full trace.
"""

from __future__ import annotations

import argparse

from ..config import GENERATION_ORDER
from ..state import load_checkpoint, save_checkpoint
from ..traces import FAMILIES, TraceSpec

NAME = "checkpoint"
HELP = "save, inspect, or resume a mid-run simulator checkpoint"


def configure_parser(parser: argparse.ArgumentParser) -> None:
    sub = parser.add_subparsers(dest="checkpoint_command", required=True)

    save = sub.add_parser("save", help="simulate a trace prefix and "
                                       "write a checkpoint")
    save.add_argument("--family", default="specint_like",
                      choices=sorted(FAMILIES))
    save.add_argument("--seed", type=int, default=1)
    save.add_argument("--length", type=int, default=20_000,
                      help="full trace length in instructions")
    save.add_argument("--gen", default="M5",
                      choices=list(GENERATION_ORDER))
    save.add_argument("--corunners", type=int, default=0)
    save.add_argument("--instructions", type=int, required=True,
                      help="how many instructions to simulate before "
                           "checkpointing")
    save.add_argument("-o", "--output", required=True,
                      help="checkpoint JSON path")
    save.set_defaults(checkpoint_func=_run_save)

    info = sub.add_parser("info", help="summarize a checkpoint file")
    info.add_argument("path")
    info.set_defaults(checkpoint_func=_run_info)

    restore = sub.add_parser("restore",
                             help="resume a checkpoint to the end of "
                                  "its trace and print final stats")
    restore.add_argument("path")
    restore.set_defaults(checkpoint_func=_run_restore)


def _run_save(args: argparse.Namespace) -> int:
    from ..core import GenerationSimulator

    spec = TraceSpec(args.family, args.seed, args.length)
    if not 0 < args.instructions < args.length:
        print(f"error: --instructions must be in (0, {args.length})")
        return 2
    trace = spec.build()
    sim = GenerationSimulator(args.gen, corunners=args.corunners)
    sim.run(trace.slice(0, args.instructions), finalize=False)
    doc = sim.save_state()
    # The trace spec rides along so `restore` can regenerate the
    # workload; the core checkpoint never stores trace contents.
    doc["trace_spec"] = spec.to_dict()
    save_checkpoint(args.output, doc)
    print(f"checkpointed {args.gen} after {args.instructions} of "
          f"{args.length} instructions of {trace.name} -> {args.output}")
    return 0


def _run_info(args: argparse.Namespace) -> int:
    doc = load_checkpoint(args.path)
    spec = doc.get("trace_spec")
    print(f"schema:       {doc['schema']} (repro {doc['version']})")
    print(f"generation:   {doc['generation']}")
    print(f"corunners:    {doc['corunners']}")
    print(f"instructions: {doc['instructions']}")
    if spec is not None:
        print(f"trace:        {spec['family']} seed={spec['seed']} "
              f"length={spec['n_instructions']}")
    components = doc.get("components", {})
    present = ", ".join(k for k, v in sorted(components.items())
                        if v is not None)
    print(f"components:   {present}")
    return 0


def _run_restore(args: argparse.Namespace) -> int:
    from ..core import GenerationSimulator

    doc = load_checkpoint(args.path)
    spec = doc.get("trace_spec")
    if spec is None:
        print("error: checkpoint carries no trace spec "
              "(not written by `repro checkpoint save`)")
        return 2
    trace = TraceSpec(**spec).build()
    start = int(doc["instructions"])
    sim = GenerationSimulator(doc["generation"],
                              corunners=int(doc["corunners"]))
    sim.restore(doc)
    r = sim.run(trace.slice(start))
    print(f"resumed {doc['generation']} at instruction {start}, "
          f"ran {len(trace) - start} more of {trace.name}")
    print(f"IPC {r.ipc:.3f}  MPKI {r.mpki:.2f}  "
          f"load-lat {r.average_load_latency:.1f}  "
          f"cycles {r.core.cycles:.0f}")
    return 0


def run(args: argparse.Namespace) -> int:
    return args.checkpoint_func(args)
