"""Helpers shared by the population-statistic subcommands."""

from __future__ import annotations

import argparse
import sys
from typing import Dict


def engine_kwargs(args: argparse.Namespace) -> Dict[str, object]:
    """Engine knobs shared by the population-statistic commands."""
    return {
        "workers": args.workers,
        "cache": "off" if args.no_cache else "disk",
        "progress": progress_printer(),
    }


def progress_printer():
    """A ``progress(done, total)`` callback: live counter on a TTY."""
    if not sys.stderr.isatty():
        return None

    def progress(done: int, total: int) -> None:
        sys.stderr.write(f"\r  engine: {done}/{total} tasks")
        if done == total:
            sys.stderr.write("\r" + " " * 40 + "\r")
        sys.stderr.flush()

    return progress


def add_engine_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--workers", type=int, default=1,
                        help="worker processes (0 = one per CPU)")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the on-disk result cache")


def parse_trace_spec(text: str):
    """``family:seed:length`` → :class:`~repro.traces.spec.TraceSpec`
    (raises ``ValueError`` on malformed input)."""
    from ..traces import TraceSpec

    family, seed, length = text.split(":")
    return TraceSpec(family, int(seed), int(length))
