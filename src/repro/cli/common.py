"""Helpers shared by the population-statistic subcommands."""

from __future__ import annotations

import argparse
import sys
from typing import Dict, Optional


def engine_kwargs(args: argparse.Namespace) -> Dict[str, object]:
    """Engine knobs shared by the population-statistic commands."""
    kwargs: Dict[str, object] = {
        "workers": args.workers,
        "cache": "off" if args.no_cache else "disk",
        "progress": progress_printer(),
    }
    telemetry = telemetry_config(args)
    if telemetry is not None:
        kwargs["telemetry"] = telemetry
    return kwargs


def telemetry_config(args: argparse.Namespace):
    """Build the engine's :class:`~repro.observe.telemetry
    .TelemetryConfig` from CLI flags — when ``--status-file`` was given
    or stderr is a TTY (the live progress line); ``None`` otherwise so
    non-interactive runs stay monitor-free."""
    status_file = getattr(args, "status_file", None)
    if status_file is None and not sys.stderr.isatty():
        return None
    from ..observe.telemetry import DEFAULT_HANG_THRESHOLD, TelemetryConfig

    def emit(message: str) -> None:
        print(f"\n{message}", file=sys.stderr)

    return TelemetryConfig(
        status_file=status_file,
        hang_threshold=float(getattr(args, "hang_threshold",
                                     DEFAULT_HANG_THRESHOLD)),
        emit=emit,
    )


class _ProgressPrinter:
    """The ``progress(done, total)`` callback: a live counter on a TTY.

    When the engine runs with telemetry it hands over its monitor via
    :meth:`set_monitor`, upgrading the line to the full telemetry
    rendering (throughput, ETA, hung-worker flag)."""

    def __init__(self) -> None:
        self.monitor = None
        self._width = 0

    def set_monitor(self, monitor) -> None:
        self.monitor = monitor

    def __call__(self, done: int, total: int) -> None:
        if self.monitor is not None:
            line = f"  {self.monitor.render_line()}"
        else:
            line = f"  engine: {done}/{total} tasks"
        self._width = max(self._width, len(line))
        sys.stderr.write("\r" + line.ljust(self._width))
        if done == total:
            sys.stderr.write("\r" + " " * self._width + "\r")
        sys.stderr.flush()


def progress_printer() -> Optional[_ProgressPrinter]:
    """A ``progress(done, total)`` callback: live counter on a TTY."""
    if not sys.stderr.isatty():
        return None
    return _ProgressPrinter()


def add_engine_flags(parser: argparse.ArgumentParser) -> None:
    from ..observe.telemetry import DEFAULT_HANG_THRESHOLD

    parser.add_argument("--workers", type=int, default=1,
                        help="worker processes (0 = one per CPU)")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the on-disk result cache")
    parser.add_argument("--status-file", default=None, metavar="PATH",
                        help="mirror live run telemetry into this JSON "
                             "file (atomically rewritten)")
    parser.add_argument("--hang-threshold", type=float,
                        default=DEFAULT_HANG_THRESHOLD, metavar="SECONDS",
                        help="flag workers as suspected hung after this "
                             "many seconds without a finished task")


def parse_trace_spec(text: str):
    """``family:seed:length`` → :class:`~repro.traces.spec.TraceSpec`
    (raises ``ValueError`` on malformed input)."""
    from ..traces import TraceSpec

    family, seed, length = text.split(":")
    return TraceSpec(family, int(seed), int(length))
