"""``python -m repro population`` — Figures 9/16/17 + summary."""

from __future__ import annotations

import argparse
import sys

from ..config import GENERATION_ORDER
from .common import add_engine_flags, engine_kwargs

NAME = "population"
HELP = "Figures 9/16/17 + summary"


def configure_parser(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--slices", type=int, default=24)
    parser.add_argument("--length", type=int, default=12_000)
    parser.add_argument("--seed", type=int, default=2020)
    parser.add_argument("--profile", action="store_true",
                        help="report engine phase/task wall-time breakdown "
                             "(forces --no-cache so tasks actually execute)")
    parser.add_argument("--profile-top", type=int, default=10,
                        help="slowest tasks to list with --profile")
    parser.add_argument("--save", default=None, metavar="POP.json",
                        help="also write the population archive JSON "
                             "(the `repro regress` / `metrics --diff` "
                             "input format)")
    add_engine_flags(parser)


def run(args: argparse.Namespace) -> int:
    from ..engine import execute_population
    from ..harness import (figure9_mpki, figure16_load_latency, figure17_ipc,
                           figure_windowed_ipc, overall_summary,
                           render_curves)
    kwargs = engine_kwargs(args)
    if args.profile:
        # Cached tasks carry no timings; profiling wants executed ones.
        kwargs["cache"] = "off"
    pop, stats = execute_population(n_slices=args.slices,
                                    slice_length=args.length,
                                    seed=args.seed, **kwargs)
    print(render_curves(figure17_ipc(pop), "FIG 17 - IPC per slice"))
    print()
    print(render_curves(figure9_mpki(pop),
                        "FIG 9 - MPKI per slice (clipped at 20)"))
    print()
    print(render_curves(figure16_load_latency(pop),
                        "FIG 16 - avg load latency per slice"))
    print()
    print(render_curves(figure_windowed_ipc(pop),
                        "FIG W - IPC per window (warmup excluded)"))
    s = overall_summary(pop)
    print("\nsummary:")
    for g in GENERATION_ORDER:
        print(f"  {g}: ipc {s[g]['ipc']:.2f}  mpki {s[g]['mpki']:.2f}  "
              f"load-lat {s[g]['load_latency']:.1f}")
    print(f"  IPC growth/yr: {s['summary']['ipc_growth_per_year_pct']:.1f}% "
          f"(paper 20.6%)")
    print(f"  engine: {stats.describe()}", file=sys.stderr)
    if args.save:
        from ..serialization import population_to_json
        with open(args.save, "w") as f:
            f.write(population_to_json(pop))
        print(f"  archive written to {args.save}", file=sys.stderr)
    if args.profile:
        from ..observe import describe_profile
        print()
        print(describe_profile(stats, top=args.profile_top))
    return 0
