"""Branch prediction security (paper Section V)."""

from .attacks import (  # noqa: F401
    AttackOutcome,
    SharedIndirectPredictor,
    cross_training_attack,
    entropy_rotation_retraining_cost,
    replay_attack,
)
from .context_hash import (  # noqa: F401
    ProcessContext,
    SecureFrontEndContext,
    TargetCipher,
    compute_context_hash,
)
from .entropy import (  # noqa: F401
    EntropySources,
    PrivilegeLevel,
    SecurityState,
    diffuse,
    undiffuse,
)
