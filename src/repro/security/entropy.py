"""Entropy sources and diffusion for CONTEXT_HASH (Section V, Figure 10).

The CONTEXT_HASH register mixes:

- a *software* entropy source selected by privilege level (implemented as
  ``SCXTNUM_ELx`` under ARMv8.5 CSV2);
- a *hardware* entropy source, also selected by privilege level;
- another hardware entropy source selected by security state;
- an entropy source combining ASID, VMID, security state and privilege.

The combination passes through rounds of entropy diffusion — "a
deterministic, reversible non-linear transformation to average per-bit
randomness" — performed entirely in hardware with no software visibility
to intermediates, even for the hypervisor.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict

MASK64 = (1 << 64) - 1


class PrivilegeLevel(enum.IntEnum):
    """Exception levels: user, kernel, hypervisor, firmware."""

    EL0_USER = 0
    EL1_KERNEL = 1
    EL2_HYPERVISOR = 2
    EL3_FIRMWARE = 3


class SecurityState(enum.IntEnum):
    NON_SECURE = 0
    SECURE = 1


def diffuse(value: int, rounds: int = 4) -> int:
    """Deterministic, reversible, non-linear diffusion (xorshift-multiply
    rounds; each step is invertible on 64 bits, so the whole transform is
    a bijection that spreads per-bit randomness)."""
    v = value & MASK64
    for _ in range(rounds):
        v ^= (v >> 33)
        v = (v * 0xFF51AFD7ED558CCD) & MASK64
        v ^= (v >> 29)
        v = (v * 0xC4CEB9FE1A85EC53) & MASK64
    return v


def undiffuse(value: int, rounds: int = 4) -> int:
    """Exact inverse of :func:`diffuse` (demonstrates reversibility)."""

    def inv_xorshift(v: int, shift: int) -> int:
        out = v
        recovered = shift
        while recovered < 64:
            out = v ^ (out >> shift)
            recovered += shift
        return out & MASK64

    inv1 = pow(0xFF51AFD7ED558CCD, -1, 1 << 64)
    inv2 = pow(0xC4CEB9FE1A85EC53, -1, 1 << 64)
    v = value & MASK64
    # diffuse applies, per round: xor33, mul1, xor29, mul2 — so invert in
    # reverse: mul2^-1, xor29^-1, mul1^-1, xor33^-1.
    for _ in range(rounds):
        v = (v * inv2) & MASK64
        v = inv_xorshift(v, 29)
        v = (v * inv1) & MASK64
        v = inv_xorshift(v, 33)
    return v


@dataclass
class EntropySources:
    """Per-level SW/HW entropy registers (SCXTNUM_ELx and friends).

    ``sw_entropy`` is the software-visible knob the OS can rotate to force
    retraining (the CEASER-like periodic rehash of Section V); the
    hardware sources are set at reset and never architecturally visible.
    """

    sw_entropy: Dict[PrivilegeLevel, int] = field(default_factory=dict)
    hw_entropy: Dict[PrivilegeLevel, int] = field(default_factory=dict)
    hw_secure_entropy: Dict[SecurityState, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for lvl in PrivilegeLevel:
            self.sw_entropy.setdefault(lvl, 0)
            # Deterministic per-level defaults standing in for fuses/TRNG.
            self.hw_entropy.setdefault(lvl, diffuse(0xA5A5 + int(lvl)))
        for st in SecurityState:
            self.hw_secure_entropy.setdefault(st, diffuse(0x5A5A + int(st)))

    def set_sw_entropy(self, level: PrivilegeLevel, value: int) -> None:
        """The OS/hypervisor writes SCXTNUM_ELx."""
        self.sw_entropy[level] = value & MASK64
