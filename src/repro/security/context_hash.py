"""CONTEXT_HASH computation and the target stream cipher (Section V).

Within a processor context, CONTEXT_HASH is "used as a very fast stream
cipher to XOR with the indirect branch or return targets being stored to
the BTB or RAS" (Figure 11); a substitution/bit-reversal step further
obfuscates against plaintext attacks.  The register itself is not software
accessible and is recomputed only at context switch (a few cycles,
negligible against context-switch cost).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .entropy import (
    EntropySources,
    MASK64,
    PrivilegeLevel,
    SecurityState,
    diffuse,
)


@dataclass(frozen=True)
class ProcessContext:
    """The identifiers that select entropy inputs for one context."""

    asid: int
    vmid: int = 0
    privilege: PrivilegeLevel = PrivilegeLevel.EL0_USER
    security_state: SecurityState = SecurityState.NON_SECURE


def compute_context_hash(ctx: ProcessContext,
                         sources: EntropySources) -> int:
    """Figure 10: combine the four entropy inputs, then diffuse.

    Entirely deterministic given the (hidden) hardware sources, so the
    same context always reproduces the same hash — the property that lets
    the owner decrypt its own predictions perfectly.
    """
    sw = sources.sw_entropy[ctx.privilege]
    hw = sources.hw_entropy[ctx.privilege]
    hw_sec = sources.hw_secure_entropy[ctx.security_state]
    ids = (ctx.asid & 0xFFFF) | ((ctx.vmid & 0xFFFF) << 16) \
        | (int(ctx.security_state) << 32) | (int(ctx.privilege) << 33)
    mixed = sw ^ hw ^ hw_sec ^ diffuse(ids, rounds=2)
    return diffuse(mixed, rounds=4)


def _bit_reverse48(v: int) -> int:
    out = 0
    for i in range(48):
        out |= ((v >> i) & 1) << (47 - i)
    return out


class TargetCipher:
    """The per-context encrypt/decrypt pair installed into BTB/RAS paths.

    XOR stream cipher keyed by CONTEXT_HASH plus a fixed bit-reversal
    substitution ("to protect against a basic plaintext attack, a simple
    substitution cipher or bit reversal can further obfuscate the actual
    stored address").  Encrypt/decrypt are exact inverses under the same
    key; under a different key the decrypted target is effectively random.
    """

    ADDRESS_BITS = 48
    _MASK = (1 << ADDRESS_BITS) - 1

    def __init__(self, context_hash: int) -> None:
        self.key = context_hash & self._MASK

    def encrypt(self, target: int) -> int:
        return _bit_reverse48((target ^ self.key) & self._MASK)

    def decrypt(self, stored: int) -> int:
        return (_bit_reverse48(stored & self._MASK) ^ self.key) & self._MASK


class SecureFrontEndContext:
    """Convenience bundle: a context, its hash and its cipher.

    ``rotate_sw_entropy`` models the OS intentionally changing a
    SW_ENTROPY_*_LVL input "at the expense of indirect mispredicts and
    re-training" to bound cross-training exposure within a process's
    lifetime (the CEASER-like defence).
    """

    def __init__(self, ctx: ProcessContext,
                 sources: Optional[EntropySources] = None) -> None:
        self.ctx = ctx
        self.sources = sources if sources is not None else EntropySources()
        self.refresh()

    def refresh(self) -> None:
        self.context_hash = compute_context_hash(self.ctx, self.sources)
        self.cipher = TargetCipher(self.context_hash)

    def rotate_sw_entropy(self, new_value: int) -> None:
        self.sources.set_sw_entropy(self.ctx.privilege, new_value)
        self.refresh()
