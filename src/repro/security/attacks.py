"""Spectre-v2-style attack scenarios against the secure front end.

Demonstrates the two protections Section V claims:

- **cross-training**: an attacker trains an indirect predictor entry with
  a gadget target; the victim reads it back.  With target encryption the
  stored target was encrypted under CONTEXT_HASH(attacker) and decrypts
  under CONTEXT_HASH(victim) to an unrelated address, so the victim never
  speculates to the gadget.
- **replay**: an attacker who somehow learns the mapping plaintext ->
  ciphertext for one run cannot reuse it, because a new process context
  (fresh ASID and/or rotated SW entropy) changes CONTEXT_HASH.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from .context_hash import ProcessContext, SecureFrontEndContext
from .entropy import EntropySources


class SharedIndirectPredictor:
    """A bare BTB-like structure shared across contexts (the vulnerable
    hardware that encryption protects): branch PC -> stored target."""

    def __init__(self) -> None:
        self._table: Dict[int, int] = {}

    def train(self, pc: int, stored_target: int) -> None:
        self._table[pc] = stored_target

    def predict(self, pc: int) -> Optional[int]:
        return self._table.get(pc)


@dataclass
class AttackOutcome:
    attacker_target: int
    victim_speculates_to: Optional[int]

    @property
    def attack_succeeded(self) -> bool:
        return self.victim_speculates_to == self.attacker_target


def cross_training_attack(encrypted: bool,
                          sources: Optional[EntropySources] = None,
                          gadget: int = 0x4141_4140,
                          branch_pc: int = 0x1000_0000) -> AttackOutcome:
    """Attacker (ASID 7) trains; victim (ASID 42) predicts."""
    sources = sources if sources is not None else EntropySources()
    predictor = SharedIndirectPredictor()
    attacker = SecureFrontEndContext(ProcessContext(asid=7), sources)
    victim = SecureFrontEndContext(ProcessContext(asid=42), sources)
    stored = attacker.cipher.encrypt(gadget) if encrypted else gadget
    predictor.train(branch_pc, stored)
    raw = predictor.predict(branch_pc)
    if raw is None:
        return AttackOutcome(gadget, None)
    spec = victim.cipher.decrypt(raw) if encrypted else raw
    return AttackOutcome(gadget, spec)


def replay_attack(encrypted: bool,
                  sources: Optional[EntropySources] = None,
                  gadget: int = 0x4242_4240,
                  branch_pc: int = 0x2000_0000) -> AttackOutcome:
    """An attacker replays a previously-learned ciphertext after the
    victim's context changed (new ASID on the next execution)."""
    sources = sources if sources is not None else EntropySources()
    predictor = SharedIndirectPredictor()
    first_run = SecureFrontEndContext(ProcessContext(asid=100), sources)
    # The attacker observed (somehow) the exact ciphertext of `gadget`
    # under the victim's first execution and replants it later.
    ciphertext = first_run.cipher.encrypt(gadget) if encrypted else gadget
    second_run = SecureFrontEndContext(ProcessContext(asid=101), sources)
    predictor.train(branch_pc, ciphertext)
    raw = predictor.predict(branch_pc)
    spec = second_run.cipher.decrypt(raw) if encrypted else raw
    return AttackOutcome(gadget, spec)


def entropy_rotation_retraining_cost(sources: Optional[EntropySources] = None
                                     ) -> bool:
    """Rotating SW entropy changes CONTEXT_HASH for the *same* context —
    the deliberate retraining cost of the periodic-rehash defence.
    Returns True when the hash changed."""
    sources = sources if sources is not None else EntropySources()
    ctx = SecureFrontEndContext(ProcessContext(asid=5), sources)
    before = ctx.context_hash
    ctx.rotate_sw_entropy(0xDEAD_BEEF)
    return ctx.context_hash != before
